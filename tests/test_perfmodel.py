"""Performance model: Table 1 formulas vs simulator, isoefficiency laws,
memory model vs the dryrun allocator, scaling laws."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ModelConfig
from repro.perfmodel import (
    amdahl_speedup,
    asymptotic_work_megatron,
    asymptotic_work_optimus,
    efficiency_megatron,
    efficiency_optimus,
    estimate_peak_bytes,
    gustafson_speedup,
    isoefficiency_hidden,
    isoefficiency_work,
    layer_macs_backward,
    layer_macs_forward,
    max_batch_size,
    measure_peak_bytes,
    megatron_comm_backward,
    megatron_comm_forward,
    optimus_comm_backward,
    optimus_comm_forward,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
)


class TestTable1Formulas:
    def test_megatron_values(self):
        # 4(p−1)/p·bsh with b=2, s=4, h=8, p=4 → 4·(3/4)·64 = 192
        assert megatron_comm_forward(2, 4, 8, 4) == pytest.approx(192.0)
        assert megatron_comm_backward(2, 4, 8, 4) == pytest.approx(384.0)

    def test_optimus_values(self):
        b, s, h, p = 2, 4, 8, 16
        expected = math.log2(p) / (2 * math.sqrt(p)) * (7 * b * s * h + 12 * h * h)
        assert optimus_comm_forward(b, s, h, p) == pytest.approx(expected)
        assert optimus_comm_backward(b, s, h, p) == pytest.approx(3 * expected)

    def test_single_device_is_free(self):
        assert megatron_comm_forward(1, 1, 1, 1) == 0
        assert optimus_comm_forward(1, 1, 1, 1) == 0

    def test_macs(self):
        assert layer_macs_forward(1, 2, 3) == 12 * 2 * 9 + 2 * 4 * 3
        assert layer_macs_backward(1, 2, 3) == 3 * layer_macs_forward(1, 2, 3)

    @pytest.mark.parametrize("scheme", ["optimus", "megatron"])
    def test_simulator_matches_formulas(self, scheme):
        """Core validation: the executed system reproduces Table 1."""
        from repro.experiments import table1

        cfg = ModelConfig(
            vocab_size=3200, hidden_size=512, num_heads=16, num_layers=1, seq_len=64
        )
        rows = table1.run(cfg, p=16, batch_size=8)
        for r in rows:
            if r.scheme != scheme:
                continue
            if r.quantity == "compute (MACs)":
                assert r.ratio == pytest.approx(1.0, rel=1e-6), r
            elif scheme == "optimus":
                # only LN/bias collectives on top of the formula
                assert 1.0 <= r.ratio < 1.10, r
            else:
                # backward additionally pays the checkpoint all-gather
                assert 1.0 <= r.ratio <= 1.13, r


class TestIsoefficiency:
    def test_efficiency_increases_with_problem_size(self):
        for eff in (efficiency_megatron, efficiency_optimus):
            assert eff(1e4, 16) > eff(1e3, 16)

    def test_efficiency_decreases_with_devices(self):
        for eff in (efficiency_megatron, efficiency_optimus):
            assert eff(1e4, 64) < eff(1e4, 4)

    def test_optimus_more_efficient_at_scale(self):
        """§3.1.2: Optimus holds efficiency with far smaller problems."""
        for p in (16, 64, 256, 1024):
            assert efficiency_optimus(1e4, p) > efficiency_megatron(1e4, p)

    def test_isoefficiency_hidden_solves_target(self):
        for scheme in ("megatron", "optimus"):
            h = isoefficiency_hidden(scheme, 64, target_efficiency=0.8)
            eff = {"megatron": efficiency_megatron, "optimus": efficiency_optimus}[scheme]
            assert eff(h, 64) == pytest.approx(0.8, rel=1e-6)

    def test_optimus_needs_smaller_problem(self):
        for p in (16, 64, 256):
            assert isoefficiency_work("optimus", p) < isoefficiency_work("megatron", p)

    def test_asymptotic_law_ratio(self):
        """Empirical isoefficiency growth tracks the paper's asymptotics."""
        for scheme, law in (
            ("megatron", asymptotic_work_megatron),
            ("optimus", asymptotic_work_optimus),
        ):
            w1 = isoefficiency_work(scheme, 256)
            w2 = isoefficiency_work(scheme, 4096)
            empirical = w2 / w1
            predicted = law(4096) / law(256)
            assert empirical == pytest.approx(predicted, rel=0.35)

    @given(st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_isoefficiency_monotone_in_p(self, k):
        p = 2**k
        assert isoefficiency_work("optimus", 2 * p) > isoefficiency_work("optimus", p)


class TestScalingLaws:
    def test_amdahl(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)
        assert amdahl_speedup(1.0, 8) == pytest.approx(1.0)
        assert amdahl_speedup(0.1, 10**9) == pytest.approx(10.0, rel=1e-6)

    def test_gustafson(self):
        assert gustafson_speedup(0.0, 8) == pytest.approx(8.0)
        assert gustafson_speedup(0.5, 8) == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)
        with pytest.raises(ValueError):
            gustafson_speedup(0.5, 0)
        with pytest.raises(ValueError):
            weak_scaling_efficiency(1.0, 0.0, 1.0, 4)
        with pytest.raises(ValueError):
            strong_scaling_efficiency(1.0, -1.0, 4)

    def test_efficiency_definitions(self):
        # perfect scaling → efficiency 1
        assert strong_scaling_efficiency(8.0, 1.0, 8) == pytest.approx(1.0)
        assert weak_scaling_efficiency(1.0, 1.0, 8.0, 8) == pytest.approx(1.0)


class TestMemoryModel:
    CFG = ModelConfig(
        vocab_size=51200, hidden_size=1024, num_heads=16, num_layers=4, seq_len=128
    )

    def test_measure_vs_estimate_agree(self):
        for scheme, p in (("optimus", 4), ("megatron", 4)):
            measured = measure_peak_bytes(scheme, self.CFG, p, batch_size=8)
            estimated = estimate_peak_bytes(scheme, self.CFG, p, batch_size=8).total
            assert estimated == pytest.approx(measured, rel=0.30), scheme

    def test_measured_monotone_in_batch(self):
        a = measure_peak_bytes("optimus", self.CFG, 4, 4)
        b = measure_peak_bytes("optimus", self.CFG, 4, 16)
        assert b > a

    def test_optimus_lighter_than_megatron(self):
        """§3.1.1 at equal (cfg, p, b): 2-D beats 1-D on per-device bytes."""
        o = measure_peak_bytes("optimus", self.CFG, 16, 16)
        m = measure_peak_bytes("megatron", self.CFG, 16, 16)
        assert o < m

    def test_optimizer_slots_add_memory(self):
        base = estimate_peak_bytes("optimus", self.CFG, 4, 8, optimizer_slots=0)
        adam = estimate_peak_bytes("optimus", self.CFG, 4, 8, optimizer_slots=2)
        assert adam.total - base.total == pytest.approx(2 * base.params)

    def test_max_batch_bisection(self):
        cap = measure_peak_bytes("optimus", self.CFG, 4, 8) + 1
        found = max_batch_size("optimus", self.CFG, 4, cap, granularity=2)
        assert found >= 8
        assert measure_peak_bytes("optimus", self.CFG, 4, found) <= cap
        assert measure_peak_bytes("optimus", self.CFG, 4, found + 2) > cap

    def test_max_batch_zero_when_nothing_fits(self):
        assert max_batch_size("optimus", self.CFG, 4, capacity_bytes=1) == 0

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            estimate_peak_bytes("zero", self.CFG, 4, 8)
        with pytest.raises(ValueError):
            measure_peak_bytes("zero", self.CFG, 4, 8)

    def test_non_square_mesh_rejected(self):
        with pytest.raises(ValueError):
            measure_peak_bytes("optimus", self.CFG, 8, 8)


@given(st.integers(2, 64), st.integers(1, 8), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_comm_formulas_nonnegative_and_monotone_in_b(p, b, s):
    h = 16
    assert megatron_comm_forward(b, s, h, p) >= 0
    assert optimus_comm_forward(b, s, h, p) >= 0
    if p > 1:
        assert megatron_comm_forward(b + 1, s, h, p) > megatron_comm_forward(b, s, h, p)
        assert optimus_comm_forward(b + 1, s, h, p) > optimus_comm_forward(b, s, h, p)
