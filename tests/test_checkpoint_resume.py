"""Full-state checkpoint round-trips: save mid-run, restore into a fresh
trainer, and continue — bit-identically for a same-shape restore, and
losslessly (same global state, deterministic continuation) across device
counts, where float summation order legitimately differs in the last ulp."""

from __future__ import annotations

import numpy as np

from repro.config import tiny_config
from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.nn import init_transformer_params
from repro.runtime import Simulator
from repro.serialization import gather_parameters, load_training_checkpoint
from repro.training import (
    Adam,
    BatchStream,
    DynamicLossScaler,
    Trainer,
    make_serial_trainer,
    warmup_cosine,
)
from tests.conftest import make_mesh

_SEED = 11
_BATCH = 4


def _optimus_trainer(cfg, with_scaler=False):
    model = OptimusModel(make_mesh(2), cfg, init_transformer_params(cfg, seed=1))
    optimizer = Adam(model.parameters(), lr=1e-2)
    kw = {}
    if with_scaler:
        kw["scaler"] = DynamicLossScaler(optimizer)
        kw["rng"] = np.random.default_rng(5)
    return Trainer(
        model,
        optimizer,
        BatchStream.copy_task(cfg, _BATCH, seed=_SEED),
        lr_schedule=warmup_cosine(1e-2, warmup_steps=3, total_steps=20),
        **kw,
    )


def _megatron_trainer(cfg, p=2):
    model = MegatronModel(
        Simulator.for_flat(p=p), cfg, init_transformer_params(cfg, seed=1)
    )
    return Trainer(
        model,
        Adam(model.parameters(), lr=1e-2),
        BatchStream.copy_task(cfg, _BATCH, seed=_SEED),
    )


def _serial_trainer(cfg):
    return make_serial_trainer(
        cfg, BatchStream.copy_task(cfg, _BATCH, seed=_SEED), seed=1
    )


def _interrupted(make, cfg, tmp_path, total=6, at=3, **kw):
    """(uninterrupted losses, resumed-continuation losses) for a trainer
    factory; the resumed run restores into a *fresh* trainer."""
    full = make(cfg, **kw).train_steps(total).losses

    first = make(cfg, **kw)
    first.train_steps(at)
    path = first.save(tmp_path / "mid")

    resumed = make(cfg, **kw)
    assert resumed.resume(path) == at
    cont = resumed.train_steps(total - at).losses
    return full, cont, resumed


class TestSameShapeResume:
    def test_serial_bit_exact(self, cfg, tmp_path):
        full, cont, _ = _interrupted(lambda c: _serial_trainer(c), cfg, tmp_path)
        assert cont == full[3:]  # bit-exact, not approx

    def test_optimus_bit_exact(self, cfg, tmp_path):
        full, cont, _ = _interrupted(_optimus_trainer, cfg, tmp_path)
        assert cont == full[3:]

    def test_optimus_with_scaler_rng_and_schedule(self, cfg, tmp_path):
        full, cont, resumed = _interrupted(
            _optimus_trainer, cfg, tmp_path, with_scaler=True
        )
        assert cont == full[3:]
        # the restored trainer carried the AMP scale and RNG stream along
        reference = _optimus_trainer(cfg, with_scaler=True)
        reference.train_steps(6)
        assert resumed.scaler.state() == reference.scaler.state()
        assert resumed.rng.integers(1 << 30) == reference.rng.integers(1 << 30)

    def test_megatron_bit_exact(self, cfg, tmp_path):
        full, cont, _ = _interrupted(_megatron_trainer, cfg, tmp_path)
        assert cont == full[3:]

    def test_resume_rewinds_a_run_that_went_past(self, cfg, tmp_path):
        trainer = _optimus_trainer(cfg)
        losses = list(trainer.train_steps(3).losses)
        path = trainer.save(tmp_path / "rewind")
        trainer.train_steps(3)  # overshoot, then roll back
        assert trainer.resume(path) == 3
        assert trainer.log.losses == losses  # log truncated to the restore
        trainer.train_steps(1)
        fresh = _optimus_trainer(cfg)
        assert trainer.log.losses == fresh.train_steps(4).losses


class TestCrossDeviceCountResume:
    """A checkpoint is a *global* state: restoring into a different device
    count is lossless, though the continued trajectory may differ in the
    last ulp (float summation order)."""

    def test_megatron_p2_checkpoint_restores_into_p3(self, tmp_path):
        cfg = tiny_config(num_layers=2)  # heads=6: p in {1, 2, 3, 6} valid
        source = _megatron_trainer(cfg, p=2)
        source.train_steps(3)
        path = source.save(tmp_path / "p2")
        cont2 = list(source.train_steps(3).losses)[3:]

        state = load_training_checkpoint(path)
        resumed = _megatron_trainer(cfg, p=3)
        resumed.resume(state)

        # lossless: the re-gathered global parameters are bit-identical
        restored = gather_parameters(resumed.model)
        for name, arr in state.params.items():
            np.testing.assert_array_equal(restored[name], arr)
        assert resumed.step == 3
        assert resumed.optimizer.t == source.optimizer.t - 3

        cont3 = resumed.train_steps(3).losses
        np.testing.assert_allclose(cont3, cont2, rtol=0, atol=1e-9)

        # and the p=3 continuation is itself deterministic
        again = _megatron_trainer(cfg, p=3)
        again.resume(load_training_checkpoint(path))
        assert again.train_steps(3).losses == cont3
