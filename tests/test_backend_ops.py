"""The ops dispatch layer: numpy execution and dryrun shape propagation."""

import numpy as np
import pytest

from repro.backend import ops
from repro.backend.dtypes import (
    as_dtype,
    dtype_size,
    float32,
    float64,
    int64,
    result_float,
)
from repro.backend.shape_array import ShapeArray


class TestDtypes:
    def test_roundtrip(self):
        assert as_dtype("float32") is float32
        assert as_dtype(np.float64) is float64
        assert as_dtype(float32) is float32

    def test_sizes(self):
        assert dtype_size("float32") == 4
        assert dtype_size("float64") == 8
        assert dtype_size("int64") == 8
        assert dtype_size("bool") == 1

    def test_unknown(self):
        with pytest.raises(ValueError):
            as_dtype("float99")
        with pytest.raises(ValueError):
            as_dtype(np.complex128)

    def test_promotion(self):
        assert result_float(float32, float64) is float64
        assert result_float(float32, int64) is float32
        assert result_float(int64, int64) is float64


class TestCreation:
    def test_zeros_numpy(self):
        z = ops.zeros((2, 3), "float32")
        assert isinstance(z, np.ndarray)
        assert z.dtype == np.float32
        assert not z.any()

    def test_zeros_shape_backend(self):
        z = ops.zeros((2, 3), "float32", backend=ops.SHAPE)
        assert isinstance(z, ShapeArray)
        assert z.shape == (2, 3)

    def test_like_helpers(self):
        assert isinstance(ops.zeros_like(ShapeArray((2,))), ShapeArray)
        assert isinstance(ops.ones_like(np.zeros(2)), np.ndarray)
        assert ops.ones_like(np.zeros(2)).sum() == 2

    def test_arange_full(self):
        assert list(ops.arange(3)) == [0, 1, 2]
        assert ops.arange(3, backend=ops.SHAPE).shape == (3,)
        assert ops.full((2,), 7.0)[0] == 7.0
        assert ops.full((2,), 7.0, backend=ops.SHAPE).shape == (2,)

    def test_backend_of(self):
        assert ops.backend_of(np.zeros(1)) == ops.NUMPY
        assert ops.backend_of(ShapeArray((1,))) == ops.SHAPE


class TestElementwise:
    def test_numeric_values(self, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(ops.exp(x), np.exp(x))
        np.testing.assert_allclose(ops.log(np.abs(x) + 1), np.log(np.abs(x) + 1))
        np.testing.assert_allclose(ops.tanh(x), np.tanh(x))
        np.testing.assert_allclose(ops.sqrt(np.abs(x)), np.sqrt(np.abs(x)))
        np.testing.assert_allclose(ops.square(x), x * x)

    def test_erf(self):
        from scipy.special import erf

        x = np.linspace(-2, 2, 9)
        np.testing.assert_allclose(ops.erf(x), erf(x))

    def test_dryrun_shapes(self):
        s = ShapeArray((3, 4), "float32")
        for fn in (ops.exp, ops.log, ops.tanh, ops.erf, ops.sqrt, ops.abs, ops.sign):
            out = fn(s)
            assert isinstance(out, ShapeArray)
            assert out.shape == (3, 4)

    def test_maximum_where_clip(self, rng):
        a, b = rng.normal(size=(4,)), rng.normal(size=(4,))
        np.testing.assert_allclose(ops.maximum(a, b), np.maximum(a, b))
        np.testing.assert_allclose(ops.minimum(a, b), np.minimum(a, b))
        np.testing.assert_allclose(ops.where(a > 0, a, b), np.where(a > 0, a, b))
        np.testing.assert_allclose(ops.clip(a, -0.5, 0.5), np.clip(a, -0.5, 0.5))
        assert ops.maximum(ShapeArray((4,)), 0.0).shape == (4,)
        assert ops.where(ShapeArray((4,), "bool"), ShapeArray((4,)), 0.0).shape == (4,)
        assert ops.clip(ShapeArray((4,)), 0, 1).shape == (4,)


class TestLinalgAndShape:
    def test_matmul_dispatch(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose(ops.matmul(a, b), a @ b)
        assert ops.matmul(ShapeArray((3, 4)), ShapeArray((4, 5))).shape == (3, 5)

    def test_transpose_reshape(self, rng):
        a = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(ops.transpose(a, (0, 2, 1)), a.transpose(0, 2, 1))
        assert ops.reshape(ShapeArray((6, 4)), (3, 8)).shape == (3, 8)

    def test_concatenate(self, rng):
        xs = [rng.normal(size=(2, 3)) for _ in range(3)]
        np.testing.assert_allclose(ops.concatenate(xs, axis=0), np.concatenate(xs))
        out = ops.concatenate([ShapeArray((2, 3)), ShapeArray((5, 3))], axis=0)
        assert out.shape == (7, 3)
        with pytest.raises(ValueError):
            ops.concatenate([ShapeArray((2, 3)), ShapeArray((5, 4))], axis=0)

    def test_split(self, rng):
        a = rng.normal(size=(6, 4))
        parts = ops.split(a, 3, axis=0)
        assert len(parts) == 3 and parts[0].shape == (2, 4)
        sparts = ops.split(ShapeArray((6, 4)), 2, axis=1)
        assert sparts[0].shape == (6, 2)
        with pytest.raises(ValueError):
            ops.split(ShapeArray((5, 4)), 2, axis=0)

    def test_stack(self, rng):
        xs = [rng.normal(size=(2, 3)) for _ in range(4)]
        assert ops.stack(xs, axis=1).shape == (2, 4, 3)
        assert ops.stack([ShapeArray((2, 3))] * 4, axis=1).shape == (2, 4, 3)


class TestGatherScatter:
    def test_take_rows(self, rng):
        table = rng.normal(size=(10, 4))
        idx = np.array([1, 3, 3])
        np.testing.assert_allclose(ops.take_rows(table, idx), table[idx])
        assert ops.take_rows(ShapeArray((10, 4)), ShapeArray((3,), "int64")).shape == (3, 4)

    def test_take_along_rows(self, rng):
        x = rng.normal(size=(4, 6))
        idx = np.array([0, 5, 2, 2])
        np.testing.assert_allclose(ops.take_along_rows(x, idx), x[np.arange(4), idx])
        assert ops.take_along_rows(ShapeArray((4, 6)), ShapeArray((4,), "int64")).shape == (4,)

    def test_put_along_rows_add(self):
        x = np.zeros((3, 4))
        ops.put_along_rows_add(x, np.array([1, 1, 0]), np.array([2.0, 3.0, 4.0]))
        assert x[0, 1] == 2.0 and x[1, 1] == 3.0 and x[2, 0] == 4.0
        s = ShapeArray((3, 4))
        assert ops.put_along_rows_add(s, ShapeArray((3,), "int64"), s) is s

    def test_index_add_accumulates_duplicates(self):
        t = np.zeros((4, 2))
        ops.index_add(t, np.array([1, 1, 3]), np.ones((3, 2)))
        assert t[1, 0] == 2.0 and t[3, 0] == 1.0
        s = ShapeArray((4, 2))
        assert ops.index_add(s, ShapeArray((3,), "int64"), ShapeArray((3, 2))) is s


class TestUtilities:
    def test_nbytes(self):
        assert ops.nbytes(np.zeros((2, 3), dtype=np.float32)) == 24
        assert ops.nbytes(ShapeArray((2, 3), "float64")) == 48

    def test_allclose(self):
        assert ops.allclose(np.ones(3), np.ones(3))
        assert not ops.allclose(np.ones(3), np.zeros(3))
        assert ops.allclose(ShapeArray((3,)), ShapeArray((3,)))
        assert not ops.allclose(ShapeArray((3,)), ShapeArray((4,)))

    def test_asarray_astype(self):
        a = ops.asarray([1, 2, 3], dtype="float64")
        assert a.dtype == np.float64
        s = ops.asarray(ShapeArray((3,)), dtype="float64")
        assert s.dtype.name == "float64"
        assert ops.astype(np.zeros(2), "float32").dtype == np.float32
