"""Post-run analysis utilities over simulator counters and traces."""

import pytest

from repro.config import tiny_config
from repro.core import OptimusModel
from repro.nn import init_transformer_params
from repro.pipeline import PipelineModel
from repro.runtime import Simulator
from repro.runtime.analysis import (
    collective_stats,
    comm_fraction,
    device_breakdowns,
    format_breakdown,
    load_imbalance,
    utilization,
)
from tests.conftest import make_mesh


@pytest.fixture
def run_sim(cfg, batch):
    ids, labels = batch
    mesh = make_mesh(2)
    mesh.sim.tracer.enabled = True
    params = init_transformer_params(cfg, seed=1)
    model = OptimusModel(mesh, cfg, params)
    model.forward(ids, labels)
    model.backward()
    return mesh.sim


class TestBreakdowns:
    def test_components_sum_to_elapsed(self, run_sim):
        for b in device_breakdowns(run_sim):
            assert b.compute_time + b.comm_time + b.idle_time == pytest.approx(
                b.total_time
            )
            assert 0.0 <= b.busy_fraction <= 1.0
            assert 0.0 <= b.comm_fraction <= 1.0

    def test_symmetric_workload_is_balanced(self, run_sim):
        """Optimus splits everything q×q-evenly: near-perfect balance."""
        assert utilization(run_sim) > 0.95
        assert load_imbalance(run_sim) == pytest.approx(1.0, abs=0.02)

    def test_comm_fraction_in_range(self, run_sim):
        assert 0.0 < comm_fraction(run_sim) < 1.0

    def test_pipeline_shows_bubble_as_idle(self, rng):
        """Pipeline stages idle during fill/drain — visible as utilization<1."""
        cfg = tiny_config(num_layers=4)
        params = init_transformer_params(cfg, seed=1)
        ids = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
        sim = Simulator.for_flat(p=4)
        pm = PipelineModel(sim, cfg, params, num_micro_batches=2)
        pm.forward_backward(ids, ids)
        assert utilization(sim) < 0.95

    def test_format_breakdown(self, run_sim):
        out = format_breakdown(run_sim, title="T")
        assert out.splitlines()[0] == "T"
        assert "comm share" in out


class TestCollectiveStats:
    def test_aggregation(self, run_sim):
        stats = collective_stats(run_sim.tracer)
        assert "broadcast" in stats  # SUMMA traffic
        bc = stats["broadcast"]
        assert bc.count > 0
        assert bc.total_bytes > 0
        assert bc.total_time > 0

    def test_empty_tracer(self):
        sim = Simulator.for_flat(p=2)
        assert collective_stats(sim.tracer) == {}

    def test_stats_consistent_with_device_counters(self, run_sim):
        """Traced bytes must account for all bytes the devices recorded."""
        stats = collective_stats(run_sim.tracer)
        traced = sum(s.total_bytes for s in stats.values())
        # device counters count bytes per *participant*; traced counts per
        # collective, so traced ≤ total over devices
        assert 0 < traced <= run_sim.total_bytes_comm()
