"""The Fig. 1 classification branch: reference gradcheck + three-way
equivalence (serial / Optimus 2D / Megatron 1D)."""

import numpy as np
import pytest

from repro.core import OptimusModel
from repro.core.cls_head import assemble_row0_blockrows, distribute_row0_blockrows
from repro.megatron import MegatronModel
from repro.mesh import assemble_blocked_2d
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from repro.runtime import Simulator
from tests.conftest import make_mesh

NUM_CLASSES = 2


@pytest.fixture
def cls_setup(cfg, rng):
    params = init_transformer_params(cfg, seed=1, num_classes=NUM_CLASSES)
    b = 6
    ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
    cls_labels = rng.integers(0, NUM_CLASSES, size=b)
    return params, ids, cls_labels


class TestReferenceClassification:
    def test_forward_loss(self, cfg, cls_setup):
        params, ids, labels = cls_setup
        loss = ReferenceTransformer(cfg, params).forward_classification(ids, labels)
        assert np.isfinite(loss)
        assert abs(float(loss) - np.log(NUM_CLASSES)) < 1.0  # near-chance at init

    def test_logits_shape(self, cfg, cls_setup):
        params, ids, _ = cls_setup
        logits = ReferenceTransformer(cfg, params).forward_classification(ids)
        assert logits.shape == (ids.shape[0], NUM_CLASSES)

    def test_requires_cls_params(self, cfg, cls_setup, params):
        _, ids, labels = cls_setup
        with pytest.raises(KeyError):
            ReferenceTransformer(cfg, params).forward_classification(ids, labels)

    def test_backward_requires_labels(self, cfg, cls_setup):
        params, ids, _ = cls_setup
        m = ReferenceTransformer(cfg, params)
        m.forward_classification(ids)
        with pytest.raises(RuntimeError):
            m.backward_classification()

    @pytest.mark.parametrize(
        "name",
        ["cls_head.weight", "cls_head.bias", "final_ln.gamma",
         "layer0.attn.wqkv", "layer1.mlp.w2", "embedding.table"],
    )
    def test_gradients_match_finite_differences(self, cfg, cls_setup, rng, name):
        params, ids, labels = cls_setup
        m = ReferenceTransformer(cfg, params)
        m.forward_classification(ids, labels)
        grads = m.backward_classification()
        g = np.asarray(grads[name])
        x = params[name]
        eps = 1e-6
        for _ in range(4):
            idx = tuple(rng.integers(0, d) for d in x.shape)
            old = x[idx]
            x[idx] = old + eps
            fp = float(ReferenceTransformer(cfg, params).forward_classification(ids, labels))
            x[idx] = old - eps
            fm = float(ReferenceTransformer(cfg, params).forward_classification(ids, labels))
            x[idx] = old
            num = (fp - fm) / (2 * eps)
            assert abs(num - g[idx]) < 1e-5 * max(1.0, abs(num)), (name, idx)


class TestDistributedClassification:
    def _grads(self, model):
        from repro.mesh.layouts import BLOCKED_2D
        from repro.mesh.partition import assemble_row0_cols, assemble_sharded_1d

        out = {}
        for p in model.parameters():
            if p.grad is None:
                continue
            lay = p.data.layout
            if lay == BLOCKED_2D:
                out[p.name] = assemble_blocked_2d(p.grad)
            elif lay.kind == "row0_blockrows":
                out[p.name] = assemble_row0_blockrows(p.grad)
            elif lay.kind == "rank0":
                out[p.name] = p.grad.local(0)
            elif lay.kind == "sharded_1d":
                out[p.name] = assemble_sharded_1d(p.grad)
            elif lay.kind == "row0_cols":
                out[p.name] = assemble_row0_cols(p.grad)
            else:
                out[p.name] = p.grad.local(next(iter(p.grad.shards)))
        return out

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_optimus_matches_reference(self, cfg, cls_setup, q):
        params, ids, labels = cls_setup
        ref = ReferenceTransformer(cfg, params)
        ref_loss = float(ref.forward_classification(ids, labels))
        ref_grads = ref.backward_classification()

        model = OptimusModel(make_mesh(q), cfg, params)
        loss = model.forward_classification(ids, labels)
        assert loss == pytest.approx(ref_loss, abs=1e-10)
        model.backward_classification()
        grads = self._grads(model)
        for name, g_ref in ref_grads.items():
            np.testing.assert_allclose(
                grads[name], g_ref, rtol=1e-8, atol=1e-11, err_msg=name
            )

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_megatron_matches_reference(self, cfg, cls_setup, p):
        params, ids, labels = cls_setup
        ref = ReferenceTransformer(cfg, params)
        ref_loss = float(ref.forward_classification(ids, labels))
        ref_grads = ref.backward_classification()

        model = MegatronModel(Simulator.for_flat(p=p), cfg, params)
        loss = model.forward_classification(ids, labels)
        assert loss == pytest.approx(ref_loss, abs=1e-10)
        model.backward_classification()
        grads = self._grads(model)
        for name, g_ref in ref_grads.items():
            np.testing.assert_allclose(
                grads[name], g_ref, rtol=1e-8, atol=1e-11, err_msg=name
            )

    def test_optimus_inference_logits(self, cfg, cls_setup):
        params, ids, _ = cls_setup
        ref_logits = ReferenceTransformer(cfg, params).forward_classification(ids)
        model = OptimusModel(make_mesh(2), cfg, params)
        logits_dt = model.forward_classification(ids)
        from repro.mesh.partition import assemble_row_blocked

        np.testing.assert_allclose(
            assemble_row_blocked(logits_dt), ref_logits, rtol=1e-9
        )

    def test_missing_head_raises(self, cfg, params, cls_setup):
        _, ids, labels = cls_setup
        model = OptimusModel(make_mesh(2), cfg, params)  # no cls params
        with pytest.raises(RuntimeError):
            model.forward_classification(ids, labels)


class TestRow0BlockrowsLayout:
    def test_roundtrip(self, rng):
        mesh = make_mesh(3)
        w = rng.normal(size=(9, 2))
        dt = distribute_row0_blockrows(mesh, w)
        assert set(dt.shards) == {mesh.rank(0, j) for j in range(3)}
        np.testing.assert_array_equal(assemble_row0_blockrows(dt), w)

    def test_indivisible(self, rng):
        mesh = make_mesh(2)
        with pytest.raises(ValueError):
            distribute_row0_blockrows(mesh, rng.normal(size=(5, 2)))
