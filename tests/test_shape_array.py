"""ShapeArray: numpy-compatible shape/dtype propagation without data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.dtypes import bool_, float32, float64, int64
from repro.backend.shape_array import ShapeArray


class TestConstruction:
    def test_basic(self):
        a = ShapeArray((2, 3), "float32")
        assert a.shape == (2, 3)
        assert a.dtype == float32
        assert a.size == 6
        assert a.nbytes == 24
        assert a.ndim == 2

    def test_scalar_shape(self):
        a = ShapeArray((), "float64")
        assert a.size == 1
        assert a.nbytes == 8

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            ShapeArray((2, -1))

    def test_default_dtype(self):
        assert ShapeArray((1,)).dtype == float32


class TestArithmetic:
    def test_add_same_shape(self):
        a = ShapeArray((4, 5))
        assert (a + a).shape == (4, 5)

    def test_broadcast(self):
        a = ShapeArray((4, 5))
        b = ShapeArray((5,))
        assert (a + b).shape == (4, 5)
        assert (a * b).shape == (4, 5)

    def test_broadcast_keepdims(self):
        a = ShapeArray((4, 5))
        m = ShapeArray((4, 1))
        assert (a - m).shape == (4, 5)

    def test_scalar_ops(self):
        a = ShapeArray((3, 3), "float32")
        assert (a * 2.0).shape == (3, 3)
        assert (2.0 * a).dtype == float32
        assert (a / 3).shape == (3, 3)
        assert (-a).shape == (3, 3)

    def test_incompatible_broadcast_raises(self):
        with pytest.raises(ValueError):
            _ = ShapeArray((3, 4)) + ShapeArray((2, 4))

    def test_dtype_promotion(self):
        a = ShapeArray((2,), "float32")
        b = ShapeArray((2,), "float64")
        assert (a + b).dtype == float64

    def test_with_numpy_operand(self):
        a = ShapeArray((3, 4), "float32")
        n = np.zeros((4,), dtype=np.float64)
        assert (a + n).shape == (3, 4)
        assert (a + n).dtype == float64

    def test_comparison_yields_bool(self):
        a = ShapeArray((2, 2))
        assert (a > 0).dtype == bool_
        assert (a == a).dtype == bool_

    def test_boolean_ops(self):
        a = ShapeArray((2, 2), "bool")
        assert (a & a).dtype == bool_
        assert (~a).shape == (2, 2)


class TestMatmul:
    def test_2d(self):
        c = ShapeArray((3, 4)) @ ShapeArray((4, 5))
        assert c.shape == (3, 5)

    def test_batched(self):
        c = ShapeArray((2, 6, 3, 4)) @ ShapeArray((2, 6, 4, 5))
        assert c.shape == (2, 6, 3, 5)

    def test_batch_broadcast(self):
        c = ShapeArray((7, 3, 4)) @ ShapeArray((4, 5))
        assert c.shape == (7, 3, 5)

    def test_inner_mismatch(self):
        with pytest.raises(ValueError):
            _ = ShapeArray((3, 4)) @ ShapeArray((5, 6))

    def test_matmul_with_ndarray(self):
        c = ShapeArray((3, 4)) @ np.zeros((4, 2))
        assert c.shape == (3, 2)
        c = np.zeros((2, 3)) @ ShapeArray((3, 7))
        assert c.shape == (2, 7)


class TestShapeManipulation:
    def test_reshape(self):
        a = ShapeArray((4, 6))
        assert a.reshape((2, 12)).shape == (2, 12)
        assert a.reshape(24).shape == (24,)
        assert a.reshape((2, -1)).shape == (2, 12)

    def test_reshape_bad_size(self):
        with pytest.raises(ValueError):
            ShapeArray((4, 6)).reshape((5, 5))

    def test_reshape_two_unknowns(self):
        with pytest.raises(ValueError):
            ShapeArray((4, 6)).reshape((-1, -1))

    def test_transpose(self):
        a = ShapeArray((2, 3, 4))
        assert a.transpose().shape == (4, 3, 2)
        assert a.transpose(0, 2, 1).shape == (2, 4, 3)
        assert a.T.shape == (4, 3, 2)

    def test_transpose_bad_axes(self):
        with pytest.raises(ValueError):
            ShapeArray((2, 3)).transpose(0, 0)

    def test_swapaxes_ravel(self):
        a = ShapeArray((2, 3, 4))
        assert a.swapaxes(0, 2).shape == (4, 3, 2)
        assert a.ravel().shape == (24,)
        assert a.flatten().shape == (24,)

    def test_astype_copy(self):
        a = ShapeArray((2, 2), "float32")
        assert a.astype("float64").dtype == float64
        assert a.copy().shape == (2, 2)


class TestIndexing:
    def test_int_index_removes_dim(self):
        a = ShapeArray((4, 5, 6))
        assert a[1].shape == (5, 6)
        assert a[1, 2].shape == (6,)

    def test_slices(self):
        a = ShapeArray((10, 8))
        assert a[2:5].shape == (3, 8)
        assert a[:, 1:3].shape == (10, 2)
        assert a[::2].shape == (5, 8)

    def test_ellipsis_and_none(self):
        a = ShapeArray((4, 5, 6))
        assert a[..., 0].shape == (4, 5)
        assert a[None].shape == (1, 4, 5, 6)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            _ = ShapeArray((3,))[5]

    def test_fancy_index(self):
        table = ShapeArray((100, 16))
        idx = ShapeArray((7,), "int64")
        assert table[idx].shape == (7, 16)
        idx2 = np.array([1, 2, 3])
        assert table[idx2].shape == (3, 16)

    def test_bool_mask_rejected(self):
        with pytest.raises(TypeError):
            _ = ShapeArray((3, 4))[ShapeArray((3,), "bool")]

    def test_setitem_is_noop(self):
        a = ShapeArray((3, 4))
        a[0] = 1.0  # must not raise


class TestReductions:
    def test_sum_all(self):
        assert ShapeArray((3, 4)).sum().shape == ()

    def test_sum_axis(self):
        a = ShapeArray((3, 4, 5))
        assert a.sum(axis=1).shape == (3, 5)
        assert a.sum(axis=-1, keepdims=True).shape == (3, 4, 1)
        assert a.sum(axis=(0, 2)).shape == (4,)

    def test_max_min_mean_var(self):
        a = ShapeArray((3, 4))
        assert a.max(axis=1, keepdims=True).shape == (3, 1)
        assert a.min(axis=0).shape == (4,)
        assert a.mean(axis=-1).shape == (3,)
        assert a.var().shape == ()

    def test_argmax_dtype(self):
        assert ShapeArray((3, 4)).argmax(axis=1).dtype == int64

    def test_item(self):
        import math

        assert math.isnan(ShapeArray(()).item())
        with pytest.raises(ValueError):
            ShapeArray((2,)).item()


@st.composite
def _shapes(draw, max_ndim=4, max_dim=6):
    ndim = draw(st.integers(0, max_ndim))
    return tuple(draw(st.integers(1, max_dim)) for _ in range(ndim))


class TestPropertyVsNumpy:
    """ShapeArray must propagate shapes exactly as numpy does."""

    @given(_shapes(), _shapes())
    @settings(max_examples=100, deadline=None)
    def test_broadcast_matches_numpy(self, sa, sb):
        try:
            expected = np.broadcast_shapes(sa, sb)
        except ValueError:
            with pytest.raises(ValueError):
                _ = ShapeArray(sa) + ShapeArray(sb)
            return
        assert (ShapeArray(sa) + ShapeArray(sb)).shape == expected

    @given(_shapes(max_ndim=3), st.permutations(list(range(3))))
    @settings(max_examples=50, deadline=None)
    def test_transpose_matches_numpy(self, shape, perm):
        if len(shape) != 3:
            return
        expected = np.empty(shape).transpose(perm).shape
        assert ShapeArray(shape).transpose(*perm).shape == expected

    @given(_shapes(max_ndim=3, max_dim=5), st.integers(-3, 2), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_reductions_match_numpy(self, shape, axis, keepdims):
        if not shape:
            return
        axis = axis % len(shape)
        expected = np.zeros(shape).sum(axis=axis, keepdims=keepdims).shape
        assert ShapeArray(shape).sum(axis=axis, keepdims=keepdims).shape == expected
