"""The serial reference transformer: values, gradients, dryrun execution."""

import numpy as np
import pytest

from repro.backend.shape_array import ShapeArray
from repro.config import tiny_config
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer


@pytest.fixture
def model(cfg, params):
    return ReferenceTransformer(cfg, params)


class TestForward:
    def test_loss_is_finite_scalar(self, model, batch):
        ids, labels = batch
        loss = model.forward(ids, labels)
        assert np.isfinite(loss)
        assert float(loss) > 0

    def test_loss_near_log_v_at_init(self, cfg, params, batch):
        """Random init ⇒ near-uniform predictions ⇒ loss ≈ ln(v)."""
        ids, labels = batch
        loss = float(ReferenceTransformer(cfg, params).forward(ids, labels))
        assert abs(loss - np.log(cfg.vocab_size)) < 1.0

    def test_logits_shape(self, model, batch):
        ids, _ = batch
        logits = model.forward(ids)
        assert logits.shape == (ids.size, model.cfg.vocab_size)

    def test_deterministic(self, cfg, params, batch):
        ids, labels = batch
        l1 = ReferenceTransformer(cfg, params).forward(ids, labels)
        l2 = ReferenceTransformer(cfg, params).forward(ids, labels)
        assert float(l1) == float(l2)

    def test_batch_permutation_invariance(self, model, batch, rng):
        """Mean token loss is invariant under permuting the batch."""
        ids, labels = batch
        perm = rng.permutation(ids.shape[0])
        l1 = float(model.forward(ids, labels))
        l2 = float(model.forward(ids[perm], labels[perm]))
        assert l1 == pytest.approx(l2, rel=1e-12)


class TestBackward:
    def test_requires_forward_with_labels(self, model, batch):
        ids, _ = batch
        model.forward(ids)
        with pytest.raises(RuntimeError):
            model.backward()

    def test_all_params_get_grads(self, model, batch):
        ids, labels = batch
        model.forward(ids, labels)
        grads = model.backward()
        assert set(grads) == set(model.params)
        for name, g in grads.items():
            assert g.shape == model.params[name].shape, name
            assert np.isfinite(np.asarray(g)).all(), name

    @pytest.mark.parametrize(
        "name",
        [
            "embedding.table",
            "layer0.attn.wqkv",
            "layer0.attn.bqkv",
            "layer0.attn.wo",
            "layer0.attn.bo",
            "layer0.ln1.gamma",
            "layer0.ln2.beta",
            "layer1.mlp.w1",
            "layer1.mlp.b1",
            "layer1.mlp.w2",
            "layer1.mlp.b2",
            "final_ln.gamma",
            "final_ln.beta",
        ],
    )
    def test_gradients_match_finite_differences(self, cfg, params, batch, rng, name):
        ids, labels = batch
        model = ReferenceTransformer(cfg, params)
        model.forward(ids, labels)
        grads = model.backward()
        g = np.asarray(grads[name])
        x = params[name]
        eps = 1e-6
        # spot-check 4 random entries (full finite diff would be too slow)
        for _ in range(4):
            idx = tuple(rng.integers(0, d) for d in x.shape)
            old = x[idx]
            x[idx] = old + eps
            fp = float(ReferenceTransformer(cfg, params).forward(ids, labels))
            x[idx] = old - eps
            fm = float(ReferenceTransformer(cfg, params).forward(ids, labels))
            x[idx] = old
            num = (fp - fm) / (2 * eps)
            assert abs(num - g[idx]) < 1e-5 * max(1.0, abs(num)), (name, idx)

    def test_loss_and_grads_helper(self, model, batch):
        ids, labels = batch
        loss, grads = model.loss_and_grads(ids, labels)
        assert np.isfinite(loss)
        assert "embedding.table" in grads

    def test_zero_grads(self, model, batch):
        ids, labels = batch
        model.loss_and_grads(ids, labels)
        model.zero_grads()
        assert model.grads == {}


class TestDryrun:
    def test_shape_mode_runs_end_to_end(self, cfg):
        params = init_transformer_params(cfg, backend="shape")
        model = ReferenceTransformer(cfg, params)
        ids = ShapeArray((4, cfg.seq_len), "int64")
        labels = ShapeArray((4, cfg.seq_len), "int64")
        loss = model.forward(ids, labels)
        assert loss.shape == ()
        grads = model.backward()
        for name, g in grads.items():
            assert tuple(g.shape) == tuple(params[name].shape), name


class TestArchitectureVariants:
    def test_single_layer(self, rng):
        cfg = tiny_config(num_layers=1)
        params = init_transformer_params(cfg, seed=3)
        ids = rng.integers(0, cfg.vocab_size, size=(2, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(2, cfg.seq_len))
        loss, grads = ReferenceTransformer(cfg, params).loss_and_grads(ids, labels)
        assert np.isfinite(loss)
        assert "layer0.mlp.w1" in grads

    def test_wrong_hidden_head_combo_rejected(self):
        with pytest.raises(ValueError):
            tiny_config(hidden_size=25, num_heads=6)
