"""Config presets, validation rules, and the table/byte formatters."""

import pytest

from repro.config import (
    ModelConfig,
    RunConfig,
    table2_weak_scaling,
    table3_strong_scaling,
    tiny_config,
)
from repro.utils import format_bytes, format_table


class TestModelConfig:
    def test_derived_quantities(self):
        cfg = ModelConfig(hidden_size=64, num_heads=4)
        assert cfg.head_dim == 16
        assert cfg.ffn_hidden == 256

    def test_param_count_formula(self):
        cfg = tiny_config()
        h, f = cfg.hidden_size, cfg.ffn_hidden
        expected_layer = (3 * h * h + 3 * h) + (h * h + h) + (h * f + f) + (f * h + h) + 4 * h
        assert cfg.params_per_layer() == expected_layer
        assert cfg.total_params() == (
            cfg.num_layers * expected_layer + 2 * h + cfg.vocab_size * h
        )
        assert cfg.total_params(include_embedding=False) == (
            cfg.num_layers * expected_layer + 2 * h
        )

    def test_optimus_validation(self):
        cfg = tiny_config()
        cfg.validate_for_optimus(2, batch_size=4)
        with pytest.raises(ValueError, match="batch"):
            cfg.validate_for_optimus(2, batch_size=3)
        with pytest.raises(ValueError, match="heads"):
            cfg.validate_for_optimus(4, batch_size=4)
        with pytest.raises(ValueError, match="vocab"):
            tiny_config(vocab_size=50).validate_for_optimus(3, batch_size=3)
        # stem runs skip the vocab constraint
        tiny_config(vocab_size=50).validate_for_optimus(3, 3, include_vocab=False)

    def test_megatron_validation(self):
        cfg = tiny_config()
        cfg.validate_for_megatron(3, batch_size=5)
        with pytest.raises(ValueError, match="heads"):
            cfg.validate_for_megatron(4, batch_size=4)

    def test_run_config_q(self):
        rc = RunConfig(tiny_config(), num_devices=9, batch_size=3)
        assert rc.q == 3
        with pytest.raises(ValueError):
            _ = RunConfig(tiny_config(), num_devices=8, batch_size=4).q


class TestPaperPresets:
    def test_table2_matches_paper_settings(self):
        rows = table2_weak_scaling()
        assert [r["num_devices"] for r in rows] == [4, 16, 36, 64]
        assert [r["model_megatron"].hidden_size for r in rows] == [2048, 4096, 6120, 8192]
        assert [r["batch_optimus"] for r in rows] == [96, 192, 288, 384]
        assert [r["batch_megatron"] for r in rows] == [60, 60, 40, 30]
        for r in rows:
            assert r["model_optimus"].num_layers == 24
            assert r["model_optimus"].seq_len == 512

    def test_table2_batches_divide_mesh(self):
        for r in table2_weak_scaling():
            q = int(round(r["num_devices"] ** 0.5))
            r["model_optimus"].validate_for_optimus(
                q, r["batch_optimus"], include_vocab=False
            )

    def test_table3_matches_paper_settings(self):
        rows = table3_strong_scaling()
        assert [r["model_megatron"].hidden_size for r in rows] == [3072, 3072, 3096, 3072]
        assert all(r["model_optimus"].hidden_size == 3072 for r in rows)
        assert all(r["model_optimus"].num_heads == 24 for r in rows)
        assert all(r["batch_megatron"] == 12 for r in rows)
        for r in rows:
            r["model_megatron"].validate_for_megatron(
                r["num_devices"], r["batch_megatron"], include_vocab=False
            )


class TestFormatters:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.0001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(16 * 1024**3) == "16.00 GiB"
