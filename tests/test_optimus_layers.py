"""Optimus layer modules vs the serial reference, layer by layer."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core.embedding import Embedding2D, LMHead2D
from repro.core.layers import MLP2D, LayerNorm2D, Linear2D, SelfAttention2D
from repro.core.loss import CrossEntropy2D
from repro.mesh import assemble_blocked_2d, distribute_blocked_2d, distribute_row_blocked
from repro.mesh.partition import assemble_row0_cols
from repro.reference import functional as F
from tests.conftest import make_mesh


def _blocked(mesh, a):
    return distribute_blocked_2d(mesh, a)


@pytest.mark.parametrize("q", [1, 2, 3])
class TestLinear2D:
    def test_forward_backward(self, q, rng):
        mesh = make_mesh(q)
        T, fin, fout = 6 * q, 4 * q, 8 * q
        w = rng.normal(size=(fin, fout))
        bias = rng.normal(size=fout)
        x = rng.normal(size=(T, fin))
        dy = rng.normal(size=(T, fout))

        lin = Linear2D(mesh, "lin", w, bias)
        y = lin.forward(_blocked(mesh, x))
        np.testing.assert_allclose(assemble_blocked_2d(y), x @ w + bias, rtol=1e-12)

        dx = lin.backward(_blocked(mesh, dy))
        np.testing.assert_allclose(assemble_blocked_2d(dx), dy @ w.T, rtol=1e-12)
        np.testing.assert_allclose(
            assemble_blocked_2d(lin.weight.grad), x.T @ dy, rtol=1e-12
        )
        np.testing.assert_allclose(
            assemble_row0_cols(lin.bias.grad), dy.sum(axis=0), rtol=1e-12
        )

    def test_no_bias(self, q, rng):
        mesh = make_mesh(q)
        w = rng.normal(size=(2 * q, 2 * q))
        lin = Linear2D(mesh, "lin", w)
        x = rng.normal(size=(4 * q, 2 * q))
        y = lin.forward(_blocked(mesh, x))
        np.testing.assert_allclose(assemble_blocked_2d(y), x @ w, rtol=1e-12)
        assert lin.bias is None

    def test_grad_accumulates(self, q, rng):
        mesh = make_mesh(q)
        w = rng.normal(size=(2 * q, 2 * q))
        lin = Linear2D(mesh, "lin", w)
        x = rng.normal(size=(2 * q, 2 * q))
        dy = rng.normal(size=(2 * q, 2 * q))
        for _ in range(2):
            lin.forward(_blocked(mesh, x))
            lin.backward(_blocked(mesh, dy))
        np.testing.assert_allclose(
            assemble_blocked_2d(lin.weight.grad), 2 * (x.T @ dy), rtol=1e-12
        )

    def test_backward_before_forward(self, q, rng):
        mesh = make_mesh(q)
        lin = Linear2D(mesh, "lin", rng.normal(size=(q, q)))
        with pytest.raises(RuntimeError):
            lin.backward(_blocked(mesh, rng.normal(size=(q, q))))


@pytest.mark.parametrize("q", [1, 2, 3])
class TestLayerNorm2D:
    def test_matches_reference(self, q, rng):
        mesh = make_mesh(q)
        T, h = 4 * q, 6 * q
        gamma, beta = rng.normal(size=h), rng.normal(size=h)
        x = rng.normal(size=(T, h)) * 2 + 1
        dy = rng.normal(size=(T, h))

        ln = LayerNorm2D(mesh, "ln", gamma, beta, eps=1e-5)
        out = ln.forward(_blocked(mesh, x))
        ref_out, x_hat, inv_std = F.layernorm_fwd(x, gamma, beta, 1e-5)
        np.testing.assert_allclose(assemble_blocked_2d(out), ref_out, rtol=1e-10)

        dx = ln.backward(_blocked(mesh, dy))
        ref_dx, ref_dg, ref_db = F.layernorm_bwd(dy, x_hat, inv_std, gamma)
        np.testing.assert_allclose(assemble_blocked_2d(dx), ref_dx, rtol=1e-9)
        np.testing.assert_allclose(assemble_row0_cols(ln.gamma.grad), ref_dg, rtol=1e-9)
        np.testing.assert_allclose(assemble_row0_cols(ln.beta.grad), ref_db, rtol=1e-9)


@pytest.mark.parametrize("q", [1, 2, 3])
class TestSelfAttention2D:
    def test_matches_reference_attention(self, q, rng):
        """Full attention sub-block vs an inline serial computation."""
        cfg = tiny_config()
        mesh = make_mesh(q)
        b, s, h, n, d = 6, cfg.seq_len, cfg.hidden_size, cfg.num_heads, cfg.head_dim
        wqkv = rng.normal(size=(h, 3 * h))
        bqkv = rng.normal(size=3 * h)
        wo = rng.normal(size=(h, h))
        bo = rng.normal(size=h)
        x = rng.normal(size=(b * s, h))

        attn = SelfAttention2D(mesh, cfg, "attn", wqkv, bqkv, wo, bo)
        out = attn.forward(_blocked(mesh, x), b)

        # serial computation with the same head-major layout
        qkv = (x @ wqkv + bqkv).reshape(b, s, n, 3, d)
        qh, kh, vh = (qkv[:, :, :, k, :].transpose(0, 2, 1, 3) for k in range(3))
        probs = F.softmax((qh @ kh.transpose(0, 1, 3, 2)) / np.sqrt(d))
        ctx = (probs @ vh).transpose(0, 2, 1, 3).reshape(b * s, h)
        expected = ctx @ wo + bo
        np.testing.assert_allclose(assemble_blocked_2d(out), expected, rtol=1e-10)

    def test_backward_shapes_and_grads(self, q, rng):
        cfg = tiny_config()
        mesh = make_mesh(q)
        b, s, h = 6, cfg.seq_len, cfg.hidden_size
        attn = SelfAttention2D(
            mesh, cfg, "attn",
            rng.normal(size=(h, 3 * h)), rng.normal(size=3 * h),
            rng.normal(size=(h, h)), rng.normal(size=h),
        )
        x = rng.normal(size=(b * s, h))
        attn.forward(_blocked(mesh, x), b)
        dx = attn.backward(_blocked(mesh, rng.normal(size=(b * s, h))))
        assert dx.global_shape == (b * s, h)
        for p in attn.parameters():
            assert p.grad is not None, p.name


@pytest.mark.parametrize("q", [1, 2])
class TestMLP2D:
    def test_matches_serial(self, q, rng):
        mesh = make_mesh(q)
        T, h = 4 * q, 4 * q
        w1, b1 = rng.normal(size=(h, 4 * h)), rng.normal(size=4 * h)
        w2, b2 = rng.normal(size=(4 * h, h)), rng.normal(size=h)
        x = rng.normal(size=(T, h))
        dy = rng.normal(size=(T, h))

        mlp = MLP2D(mesh, "mlp", w1, b1, w2, b2)
        out = mlp.forward(_blocked(mesh, x))
        expected = F.gelu(x @ w1 + b1) @ w2 + b2
        np.testing.assert_allclose(assemble_blocked_2d(out), expected, rtol=1e-10)

        dx = mlp.backward(_blocked(mesh, dy))
        pre = x @ w1 + b1
        d_act = dy @ w2.T
        d_pre = F.gelu_bwd(pre, d_act)
        np.testing.assert_allclose(assemble_blocked_2d(dx), d_pre @ w1.T, rtol=1e-9)


@pytest.mark.parametrize("q", [1, 2, 3])
class TestEmbedding2D:
    def test_lookup(self, q, rng):
        cfg = tiny_config()
        mesh = make_mesh(q)
        table = rng.normal(size=(cfg.vocab_size, cfg.hidden_size))
        emb = Embedding2D(mesh, cfg, table)
        b = 6
        ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        out = emb.forward(distribute_row_blocked(mesh, ids))
        np.testing.assert_allclose(
            assemble_blocked_2d(out), table[ids.reshape(-1)], rtol=1e-12
        )

    def test_backward_scatter(self, q, rng):
        cfg = tiny_config()
        mesh = make_mesh(q)
        table = rng.normal(size=(cfg.vocab_size, cfg.hidden_size))
        emb = Embedding2D(mesh, cfg, table)
        b = 6
        ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        emb.forward(distribute_row_blocked(mesh, ids))
        d_out = rng.normal(size=(b * cfg.seq_len, cfg.hidden_size))
        emb.backward(_blocked(mesh, d_out))
        expected = np.zeros_like(table)
        np.add.at(expected, ids.reshape(-1), d_out)
        np.testing.assert_allclose(
            assemble_blocked_2d(emb.table.grad), expected, rtol=1e-12
        )


@pytest.mark.parametrize("q", [1, 2, 3])
class TestLMHeadAndLoss2D:
    def test_logits_and_ce(self, q, rng):
        cfg = tiny_config()
        mesh = make_mesh(q)
        table = rng.normal(size=(cfg.vocab_size, cfg.hidden_size))
        emb = Embedding2D(mesh, cfg, table)
        head = LMHead2D(mesh, emb)
        ce = CrossEntropy2D(mesh)
        b = 6
        T = b * cfg.seq_len
        x = rng.normal(size=(T, cfg.hidden_size))
        labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))

        logits = head.forward(_blocked(mesh, x))
        np.testing.assert_allclose(assemble_blocked_2d(logits), x @ table.T, rtol=1e-10)

        loss = ce.forward(logits, distribute_row_blocked(mesh, labels))
        ref_loss, ref_probs = F.cross_entropy_fwd(x @ table.T, labels.reshape(-1))
        assert loss == pytest.approx(float(ref_loss.mean()), rel=1e-10)

        dlogits = ce.backward()
        ref_dl = F.cross_entropy_bwd(ref_probs, labels.reshape(-1), np.full(T, 1.0 / T))
        np.testing.assert_allclose(assemble_blocked_2d(dlogits), ref_dl, rtol=1e-9)

        dx = head.backward(dlogits)
        np.testing.assert_allclose(assemble_blocked_2d(dx), ref_dl @ table, rtol=1e-9)
        np.testing.assert_allclose(
            assemble_blocked_2d(emb.table.grad), ref_dl.T @ x, rtol=1e-9
        )
