"""Batched-mesh SUMMA engine (``REPRO_SUMMA_BATCHED``): bit-exactness and
accounting identity against the per-rank path, fallback rules, and the
per-arm environment flag resolution used by ``repro bench``."""

import numpy as np
import pytest

from repro.comm import collectives as coll
from repro.core import summa
from repro.core.buffers import BufferManager
from repro.mesh import assemble_blocked_2d, distribute_blocked_2d
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import BLOCKED_2D
from tests.conftest import make_mesh

DEV_FIELDS = (
    "clock", "flops", "flops_gemm", "bytes_comm", "weighted_comm_volume",
    "compute_time", "comm_time", "num_collectives",
)


def _state(sim):
    return {
        r: tuple(getattr(sim.device(r), f) for f in DEV_FIELDS)
        + (sim.device(r).memory.current, sim.device(r).memory.peak,
           sim.device(r).memory.num_allocs)
        for r in sim.ranks
    }


def _run_products(q, batched, traced=True, dtype=np.float32, seed=0):
    """ab, abt, atb and the fused backward identities on one mesh; returns
    assembled numerics plus the complete accounting state."""
    rng = np.random.default_rng(seed)
    mesh = make_mesh(q)
    sim = mesh.sim
    sim.tracer.enabled = traced
    buffers = BufferManager(sim)
    M, K, N = 8 * q, 6 * q, 4 * q
    a = distribute_blocked_2d(mesh, rng.normal(size=(M, K)).astype(dtype))
    b = distribute_blocked_2d(mesh, rng.normal(size=(K, N)).astype(dtype))
    bt = distribute_blocked_2d(mesh, rng.normal(size=(N, K)).astype(dtype))
    at = distribute_blocked_2d(mesh, rng.normal(size=(K, M)).astype(dtype))
    dc = distribute_blocked_2d(mesh, rng.normal(size=(M, N)).astype(dtype))
    with summa.optimizations(batched=batched):
        outs = [
            summa.summa_ab(mesh, a, b, buffers),
            summa.summa_abt(mesh, a, bt, buffers),
            summa.summa_atb(mesh, at, b, buffers),
            *summa.grads_of_ab(mesh, a, b, dc, buffers),
            summa.summa_ab(mesh, a, b, buffers),  # cached-plan reuse
        ]
    return {
        "results": [assemble_blocked_2d(x) for x in outs],
        "state": _state(sim),
        "events": [repr(e) for e in sim.tracer.events],
        "spans": [repr(s) for s in sim.tracer.spans],
    }


class TestBitExactEquivalence:
    @pytest.mark.parametrize("q", [2, 4, 8])
    def test_numerics_and_accounting_identical(self, q):
        base = _run_products(q, batched=False)
        bat = _run_products(q, batched=True)
        for i, (x, y) in enumerate(zip(base["results"], bat["results"])):
            assert np.array_equal(x, y), f"product {i} not bit-exact at q={q}"
        assert base["state"] == bat["state"]
        assert base["events"] == bat["events"]
        assert base["spans"] == bat["spans"]

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_dtypes(self, dtype):
        base = _run_products(3, batched=False, dtype=dtype)
        bat = _run_products(3, batched=True, dtype=dtype)
        for x, y in zip(base["results"], bat["results"]):
            assert np.array_equal(x, y)
        assert base["state"] == bat["state"]

    def test_untraced_accounting_identical(self):
        base = _run_products(2, batched=False, traced=False)
        bat = _run_products(2, batched=True, traced=False)
        assert base["state"] == bat["state"]
        assert bat["events"] == []

    def test_output_shards_are_independent_of_pool(self):
        """Output shards are views into a fresh backing array, never
        pool-owned — later acquires must not overwrite live results."""
        mesh = make_mesh(2)
        rng = np.random.default_rng(0)
        a = distribute_blocked_2d(mesh, rng.normal(size=(8, 8)).astype(np.float32))
        with summa.optimizations(batched=True):
            c = summa.summa_ab(mesh, a, a)
            before = assemble_blocked_2d(c).copy()
            for _ in range(5):  # churn the pool
                summa.summa_abt(mesh, a, a)
                summa.summa_atb(mesh, a, a)
        np.testing.assert_array_equal(assemble_blocked_2d(c), before)


class TestFallbacks:
    def _desc_of(self, mesh, a, b):
        plan = summa._get_plan(mesh, "ab", a, b, summa._build_ab)
        return summa._batched_of(plan, mesh, a, b)

    def test_ragged_moe_blocks_fall_back(self):
        """MoE-style ragged row blocks are ineligible but still correct."""
        mesh = make_mesh(2)
        rng = np.random.default_rng(0)
        rows = [3, 9]
        shards = {
            mesh.rank(i, j): rng.standard_normal((rows[i], 6)).astype(np.float32)
            for i in range(2)
            for j in range(2)
        }
        a = DTensor(mesh, BLOCKED_2D, shards, (12, 12))
        b = distribute_blocked_2d(
            mesh, rng.standard_normal((12, 6)).astype(np.float32)
        )
        assert self._desc_of(mesh, a, b) is None
        with summa.optimizations(batched=True):
            c = summa.summa_ab(mesh, a, b)
        assert c.shards[mesh.rank(0, 0)].shape[0] == 3
        assert c.shards[mesh.rank(1, 0)].shape[0] == 9

    def test_mixed_dtype_shards_fall_back(self):
        mesh = make_mesh(2)
        # mixed per-shard dtypes violate the strict layout contract, but the
        # engine must still fall back (not batch) when checking is off
        mesh.sim.strict_invariants = False
        rng = np.random.default_rng(0)
        a = distribute_blocked_2d(mesh, rng.normal(size=(8, 8)).astype(np.float32))
        mixed = {
            r: (s if r == mesh.ranks[0] else s.astype(np.float64))
            for r, s in a.shards.items()
        }
        amix = DTensor(mesh, BLOCKED_2D, mixed, (8, 8))
        assert self._desc_of(mesh, amix, a) is None

    def test_dryrun_falls_back(self):
        from repro.backend.shape_array import ShapeArray

        mesh = make_mesh(2, backend="dryrun")
        shards = {r: ShapeArray((4, 4), "float32") for r in mesh.ranks}
        a = DTensor(mesh, BLOCKED_2D, shards, (8, 8))
        assert self._desc_of(mesh, a, a) is None
        with summa.optimizations(batched=True):
            c = summa.summa_ab(mesh, a, a)
        assert c.global_shape == (8, 8)

    def test_q1_falls_back(self, rng):
        mesh = make_mesh(1)
        a = distribute_blocked_2d(mesh, rng.normal(size=(4, 4)))
        assert self._desc_of(mesh, a, a) is None
        with summa.optimizations(batched=True):
            c = summa.summa_ab(mesh, a, a)
        np.testing.assert_array_equal(
            assemble_blocked_2d(c), a.shards[0] @ a.shards[0]
        )

    def test_patched_collectives_force_per_rank(self, rng, monkeypatch):
        """Monkey-patched broadcast/reduce (contract checker, legacy bench
        arm) must observe every per-rank collective call."""
        mesh = make_mesh(2)
        a = distribute_blocked_2d(mesh, rng.normal(size=(8, 8)).astype(np.float32))
        calls = []
        real = coll.broadcast

        def spy(group, src, root, precost=None):
            calls.append(root)
            return real(group, src, root, precost)

        monkeypatch.setattr(coll, "broadcast", spy)
        assert not summa._batched_ready(mesh.sim)
        with summa.optimizations(batched=True):
            summa.summa_ab(mesh, a, a)
        assert len(calls) == 2 * 2 * 2  # q steps x (A row + B col) x q groups

    def test_contract_checker_forces_per_rank(self, rng):
        from repro.check.contracts import CollectiveContractChecker

        mesh = make_mesh(2)
        a = distribute_blocked_2d(mesh, rng.normal(size=(8, 8)).astype(np.float32))
        checker = CollectiveContractChecker()
        checker.install()
        try:
            assert not summa._batched_ready(mesh.sim)
            with summa.optimizations(batched=True):
                c = summa.summa_ab(mesh, a, a)
        finally:
            checker.uninstall()
        assert summa._batched_ready(mesh.sim)
        ref = assemble_blocked_2d(a) @ assemble_blocked_2d(a)
        np.testing.assert_allclose(assemble_blocked_2d(c), ref, rtol=1e-5)

    def test_armed_fault_injector_forces_per_rank(self):
        from repro.resilience import FaultInjector
        from repro.resilience.faults import FaultSchedule

        mesh = make_mesh(2)
        inj = FaultInjector(FaultSchedule())
        inj.install(mesh.sim)
        try:
            assert not summa._batched_ready(mesh.sim)
        finally:
            inj.uninstall()
        assert summa._batched_ready(mesh.sim)


class TestFlagResolution:
    def test_flags_from_env_rereads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUMMA_BATCHED", raising=False)
        assert summa.flags_from_env()["batched"] is False  # opt-in default
        monkeypatch.setenv("REPRO_SUMMA_BATCHED", "1")
        assert summa.flags_from_env()["batched"] is True
        monkeypatch.setenv("REPRO_SUMMA_BATCHED", "0")
        assert summa.flags_from_env()["batched"] is False

    def test_resolve_env_flags_applies_per_arm(self, monkeypatch):
        saved = summa.effective_flags()
        try:
            monkeypatch.setenv("REPRO_SUMMA_BATCHED", "1")
            assert summa.resolve_env_flags()["batched"] is True
            assert summa.effective_flags()["batched"] is True
            monkeypatch.setenv("REPRO_SUMMA_BATCHED", "0")
            assert summa.resolve_env_flags()["batched"] is False
            assert summa.effective_flags()["batched"] is False
        finally:
            summa.configure(**saved)

    def test_optimizations_restores_batched(self):
        before = summa.effective_flags()
        with summa.optimizations(batched=True):
            assert summa.effective_flags()["batched"] is True
        assert summa.effective_flags() == before

    def test_legacy_arm_disables_batched(self):
        from repro.bench.legacy import pre_optimization

        with summa.optimizations(batched=True):
            with pre_optimization():
                assert summa.effective_flags()["batched"] is False
            assert summa.effective_flags()["batched"] is True


class TestFuzzBatchedArm:
    def test_run_trial_includes_batched_arm(self):
        from repro.check.fuzz import TrialSpec, run_trial

        spec = TrialSpec(
            q=2, p=2, batch=2, seq=4, heads=2, head_dim=2, layers=1,
            vocab=16, dtype="float64", optimizer="sgd", lr=0.05,
            momentum=0.0, weight_decay=0.0, param_seed=7, data_seed=11,
        )
        result = run_trial(spec, strict=True, contracts=True, batched=True)
        assert result.passed, result.failures

    def test_batched_arm_catches_numeric_divergence(self, monkeypatch):
        """A deliberately-broken batched stage must fail the trial."""
        from repro.backend import ops as _ops
        from repro.check.fuzz import TrialSpec, run_trial

        real = _ops.batched_outer_matmul

        def broken(astk, bstk, out):
            real(astk, bstk, out)
            out += 1e-3
            return out

        monkeypatch.setattr(_ops, "batched_outer_matmul", broken)
        spec = TrialSpec(
            q=2, p=2, batch=2, seq=4, heads=2, head_dim=2, layers=1,
            vocab=16, dtype="float64", optimizer="sgd", lr=0.05,
            momentum=0.0, weight_decay=0.0, param_seed=7, data_seed=11,
        )
        result = run_trial(spec, strict=False, contracts=False, batched=True)
        assert not result.passed
        assert any("batched" in f for f in result.failures)


class TestHybridEquivalence:
    def test_data_parallel_hybrid_bit_exact(self, cfg, params, rng):
        """2 replicas x 2x2 meshes: batched engine matches per-rank on the
        full hybrid forward/backward, numerics and accounting."""
        from repro.hardware.specs import frontera_rtx
        from repro.hybrid import DataParallel
        from repro.mesh.partition import assemble_any
        from repro.runtime import Simulator

        b = 8  # per-replica batch 4, divisible by q=2
        ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))

        def run(batched):
            sim = Simulator(frontera_rtx(2), num_ranks=8)
            dp = DataParallel(sim, cfg, params, num_replicas=2, q=2)
            with summa.optimizations(batched=batched):
                loss = dp.forward_backward(ids, labels)
            grads = {
                p.name: np.asarray(assemble_any(p.grad))
                for p in dp.replicas[0].parameters()
            }
            return loss, grads, _state(sim)

        loss0, grads0, state0 = run(False)
        loss1, grads1, state1 = run(True)
        assert loss0 == loss1
        for name in grads0:
            assert np.array_equal(grads0[name], grads1[name]), name
        assert state0 == state1
