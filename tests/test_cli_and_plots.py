"""CLI entry points and the ASCII plotting utility."""

import pytest

from repro.cli import COMMANDS, main
from repro.utils.asciiplot import line_plot


class TestLinePlot:
    def test_basic_structure(self):
        out = line_plot({"a": [1, 2, 3]}, [10, 20, 30], title="T", width=30, height=8)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert any("o a" in l for l in lines)  # legend
        assert "10" in out and "30" in out  # x labels

    def test_multi_series_markers(self):
        out = line_plot({"a": [1, 2], "b": [2, 1]}, [0, 1])
        assert "o a" in out and "x b" in out
        assert out.count("o") >= 2

    def test_log_scale(self):
        out = line_plot({"w": [1, 100, 10000]}, [1, 2, 3], logy=True)
        assert "1e+04" in out or "10000" in out

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_plot({"w": [0, 1]}, [1, 2], logy=True)

    def test_constant_series(self):
        out = line_plot({"flat": [5, 5, 5]}, [1, 2, 3])
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot({}, [1, 2])
        with pytest.raises(ValueError):
            line_plot({"a": [1]}, [1, 2])

    def test_extremes_hit_borders(self):
        out = line_plot({"a": [0, 10]}, [0, 1], width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "o" in rows[0]  # max value on the top row
        assert "o" in rows[-1]  # min value on the bottom row


class TestCLI:
    def test_verify_command(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all three implementations agree" in out

    def test_isoefficiency_command(self, capsys):
        assert main(["isoefficiency"]) == 0
        assert "Isoefficiency" in capsys.readouterr().out

    def test_report_command(self, capsys, tmp_path):
        from repro.experiments import report

        (tmp_path / "table2.txt").write_text("TABLE2 CONTENT")
        text = report.render(report.collect(tmp_path))
        assert "TABLE2 CONTENT" in text
        assert "Missing sections" in text  # the others were not generated
        # empty dir → everything listed missing, header intact
        empty = report.render(report.collect(tmp_path / "nope"))
        assert "Reproduction report" in empty

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_all_known_commands_registered(self):
        assert set(COMMANDS) == {
            "table1", "table2", "table3", "fig7", "fig8", "fig9",
            "isoefficiency", "report", "verify",
        }


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
        assert repro.__version__
