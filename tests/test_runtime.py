"""Runtime: memory meter, devices, simulator clocks and counters."""

import pytest

from repro.hardware.specs import RTX5000, frontera_rtx
from repro.runtime import MemoryMeter, OutOfDeviceMemory, SimDevice, Simulator


class TestMemoryMeter:
    def test_alloc_free_peak(self):
        m = MemoryMeter(rank=0)
        m.alloc(100, "a")
        m.alloc(50, "b")
        assert m.current == 150
        assert m.peak == 150
        m.free(100, "a")
        assert m.current == 50
        assert m.peak == 150
        assert m.num_allocs == 2

    def test_free_tag(self):
        m = MemoryMeter(rank=0)
        m.alloc(30, "x")
        m.alloc(20, "x")
        assert m.free_tag("x") == 50
        assert m.current == 0
        assert m.free_tag("x") == 0

    def test_overfree_rejected(self):
        m = MemoryMeter(rank=0)
        m.alloc(10, "a")
        with pytest.raises(ValueError):
            m.free(20, "a")
        m.alloc(10, "b")
        with pytest.raises(ValueError):
            m.free(15, "a")  # more than tag "a" holds

    def test_negative_rejected(self):
        m = MemoryMeter(rank=0)
        with pytest.raises(ValueError):
            m.alloc(-1)
        with pytest.raises(ValueError):
            m.free(-1)

    def test_strict_capacity(self):
        m = MemoryMeter(rank=3, capacity=100, strict=True)
        m.alloc(90)
        with pytest.raises(OutOfDeviceMemory) as ei:
            m.alloc(20)
        assert ei.value.rank == 3
        assert ei.value.requested == 20
        assert m.headroom == 10

    def test_nonstrict_allows_overflow(self):
        m = MemoryMeter(rank=0, capacity=100, strict=False)
        m.alloc(500)  # tracked, not enforced
        assert m.peak == 500

    def test_reset_peak(self):
        m = MemoryMeter(rank=0)
        m.alloc(100)
        m.free(100)
        m.reset_peak()
        assert m.peak == 0


class TestSimDevice:
    def _dev(self):
        return SimDevice(rank=0, spec=RTX5000, memory=MemoryMeter(rank=0))

    def test_compute_advances_clock(self):
        d = self._dev()
        dt = d.compute(RTX5000.effective_flops)  # exactly one second of work
        assert dt == pytest.approx(1.0)
        assert d.clock == pytest.approx(1.0)
        assert d.flops == RTX5000.effective_flops
        assert d.flops_gemm == RTX5000.effective_flops

    def test_elementwise_not_counted_as_gemm(self):
        d = self._dev()
        d.compute(1000, kind="elementwise")
        assert d.flops == 1000
        assert d.flops_gemm == 0

    def test_negative_flops(self):
        with pytest.raises(ValueError):
            self._dev().compute(-1)

    def test_charge_comm(self):
        d = self._dev()
        d.charge_comm(0.5, 1000, 2000)
        assert d.comm_time == 0.5
        assert d.bytes_comm == 1000
        assert d.weighted_comm_volume == 2000
        assert d.num_collectives == 1

    def test_reset(self):
        d = self._dev()
        d.compute(100)
        d.charge_comm(1, 1, 1)
        d.reset_counters()
        assert d.clock == 0 and d.flops == 0 and d.comm_time == 0


class TestSimulator:
    def test_construction(self):
        sim = Simulator.for_mesh(q=2)
        assert sim.num_ranks == 4
        assert sim.cluster.num_nodes == 1
        sim2 = Simulator.for_mesh(q=4)
        assert sim2.cluster.num_nodes == 4

    def test_flat(self):
        sim = Simulator.for_flat(p=6)
        assert sim.num_ranks == 6
        assert sim.cluster.num_nodes == 2

    def test_too_many_ranks(self):
        with pytest.raises(ValueError):
            Simulator(frontera_rtx(1), num_ranks=5)

    def test_sync_and_advance(self):
        sim = Simulator.for_flat(p=4)
        sim.device(0).clock = 5.0
        t = sim.sync([0, 1, 2])
        assert t == 5.0
        assert sim.device(1).clock == 5.0
        assert sim.device(3).clock == 0.0  # not in the barrier
        sim.advance([0, 1], 2.0)
        assert sim.elapsed() == 7.0

    def test_reset_time_keeps_memory(self):
        sim = Simulator.for_flat(p=2)
        sim.device(0).memory.alloc(100)
        sim.device(0).compute(1e9)
        sim.reset_time()
        assert sim.elapsed() == 0.0
        assert sim.device(0).memory.current == 100

    def test_totals_and_summary(self):
        sim = Simulator.for_flat(p=2)
        sim.device(0).compute(10)
        sim.device(1).compute(30)
        assert sim.total_flops() == 40
        s = sim.summary()
        assert s["total_flops"] == 40
        assert s["elapsed"] == sim.elapsed()

    def test_strict_memory_propagates(self):
        from repro.runtime.memory import OutOfDeviceMemory

        sim = Simulator.for_flat(p=1, strict_memory=True)
        with pytest.raises(OutOfDeviceMemory):
            sim.device(0).memory.alloc(RTX5000.memory_bytes + 1)
