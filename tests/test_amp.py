"""Dynamic loss scaling: protocol correctness and training equivalence."""

import numpy as np
import pytest

from repro.core import OptimusModel
from repro.mesh.partition import assemble_any
from repro.nn import init_transformer_params
from repro.training import SGD, DynamicLossScaler, grads_finite, scale_grads
from tests.conftest import make_mesh


def _model_and_opt(cfg, lr=0.1, seed=1):
    params = init_transformer_params(cfg, seed=seed)
    model = OptimusModel(make_mesh(2), cfg, params)
    return model, SGD(model.parameters(), lr=lr)


class TestGradUtilities:
    def test_grads_finite_detects_nan_and_inf(self, cfg, batch):
        ids, labels = batch
        model, _ = _model_and_opt(cfg)
        model.forward(ids, labels)
        model.backward()
        assert grads_finite(model.parameters())
        p = model.named_parameters()["layer0.mlp.w1"]
        shard = p.grad.shards[next(iter(p.grad.shards))]
        shard[0, 0] = np.nan
        assert not grads_finite(model.parameters())
        shard[0, 0] = np.inf
        assert not grads_finite(model.parameters())

    def test_scale_grads(self, cfg, batch):
        ids, labels = batch
        model, _ = _model_and_opt(cfg)
        model.forward(ids, labels)
        model.backward()
        before = assemble_any(model.named_parameters()["layer0.mlp.w1"].grad)
        scale_grads(model.parameters(), 4.0)
        after = assemble_any(model.named_parameters()["layer0.mlp.w1"].grad)
        np.testing.assert_allclose(after, 4.0 * before)


class TestDynamicLossScaler:
    def test_scaled_training_equals_unscaled(self, cfg, batch):
        """Scale → backward → unscale → step must be bit-equal to plain
        training when no overflow occurs."""
        ids, labels = batch
        plain_model, plain_opt = _model_and_opt(cfg)
        amp_model, amp_opt = _model_and_opt(cfg)
        scaler = DynamicLossScaler(amp_opt, init_scale=2.0**8, growth_interval=100)
        for _ in range(3):
            plain_opt.zero_grad()
            plain_model.forward(ids, labels)
            plain_model.backward()
            plain_opt.step()

            amp_opt.zero_grad()
            amp_model.forward(ids, labels)
            amp_model.backward()
            scale_grads(amp_model.parameters(), scaler.scale)  # "scaled loss"
            assert scaler.step()
        w_plain = assemble_any(plain_model.named_parameters()["layer1.attn.wo"].data)
        w_amp = assemble_any(amp_model.named_parameters()["layer1.attn.wo"].data)
        np.testing.assert_allclose(w_amp, w_plain, rtol=1e-12)

    def test_overflow_skips_step_and_backs_off(self, cfg, batch):
        ids, labels = batch
        model, opt = _model_and_opt(cfg)
        scaler = DynamicLossScaler(opt, init_scale=1024.0)
        model.forward(ids, labels)
        model.backward()
        w_before = assemble_any(model.named_parameters()["layer0.mlp.w1"].data).copy()
        p = model.named_parameters()["layer0.mlp.w1"]
        p.grad.shards[next(iter(p.grad.shards))][0, 0] = np.inf
        assert not scaler.step()
        assert scaler.scale == 512.0
        assert scaler.num_overflows == 1
        # parameters untouched, gradients cleared
        np.testing.assert_array_equal(
            assemble_any(model.named_parameters()["layer0.mlp.w1"].data), w_before
        )
        assert all(q.grad is None for q in model.parameters())

    def test_scale_grows_after_clean_interval(self, cfg, batch):
        ids, labels = batch
        model, opt = _model_and_opt(cfg)
        scaler = DynamicLossScaler(opt, init_scale=2.0, growth_interval=2)
        for _ in range(4):
            opt.zero_grad()
            model.forward(ids, labels)
            model.backward()
            scale_grads(model.parameters(), scaler.scale)
            assert scaler.step()
        assert scaler.scale == 8.0  # doubled twice (every 2 good steps)

    def test_scale_floor(self, cfg, batch):
        ids, labels = batch
        model, opt = _model_and_opt(cfg)
        scaler = DynamicLossScaler(opt, init_scale=2.0, min_scale=1.0)
        for _ in range(5):
            model.forward(ids, labels)
            model.backward()
            p = model.parameters()[0]
            p.grad.shards[next(iter(p.grad.shards))][0] = np.nan
            scaler.step()
        assert scaler.scale == 1.0
        assert scaler.state()["num_overflows"] == 5

    def test_scale_ceiling(self, cfg, batch):
        """Regression: growth used to double without bound, eventually
        reaching float inf and permanently overflowing every step."""
        ids, labels = batch
        model, opt = _model_and_opt(cfg)
        scaler = DynamicLossScaler(
            opt, init_scale=2.0**23, growth_interval=1, max_scale=2.0**24
        )
        for _ in range(3):
            opt.zero_grad()
            model.forward(ids, labels)
            model.backward()
            scale_grads(model.parameters(), scaler.scale)
            assert scaler.step()
        assert scaler.scale == 2.0**24  # clamped, not 2**26
        assert np.isfinite(scaler.scale)

    def test_default_ceiling(self, cfg, batch):
        _, opt = _model_and_opt(cfg)
        assert DynamicLossScaler(opt).max_scale == 2.0**24

    def test_bad_hyperparameters(self, cfg, batch):
        _, opt = _model_and_opt(cfg)
        with pytest.raises(ValueError):
            DynamicLossScaler(opt, init_scale=0)
        with pytest.raises(ValueError):
            DynamicLossScaler(opt, growth_factor=1.0)
        with pytest.raises(ValueError):
            DynamicLossScaler(opt, backoff_factor=1.5)
        with pytest.raises(ValueError):
            DynamicLossScaler(opt, init_scale=2.0**30)  # above max_scale
        with pytest.raises(ValueError):
            DynamicLossScaler(opt, init_scale=2.0, min_scale=4.0)
