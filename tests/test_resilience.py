"""Fault injection and recovery: zero-overhead-when-off, retry/backoff,
SDC guards, crash checkpoint/restart, straggler pricing, chaos campaigns."""

from __future__ import annotations

import pytest

from repro.core import OptimusModel
from repro.nn import init_transformer_params
from repro.resilience import (
    CollectiveTimeoutError,
    FaultInjector,
    FaultSchedule,
    GradientSDC,
    MessageCorruption,
    RankCrash,
    RankCrashError,
    ResilientTrainer,
    Straggler,
    TransientCollectiveFault,
)
from repro.resilience.chaos import run_campaign
from repro.training import Adam, BatchStream, Trainer
from tests.conftest import make_mesh


def _trainer(cfg, resilient=False, seed=3, **kw):
    """An Optimus 2x2 trainer over the copy task (plain or resilient)."""
    model = OptimusModel(make_mesh(2), cfg, init_transformer_params(cfg, seed=1))
    optimizer = Adam(model.parameters(), lr=1e-2)
    batches = BatchStream.copy_task(cfg, 4, seed=seed)
    cls = ResilientTrainer if resilient else Trainer
    return cls(model, optimizer, batches, **kw)


def _baseline(cfg, steps):
    trainer = _trainer(cfg)
    log = trainer.train_steps(steps)
    return trainer, log


def _chaos(cfg, schedule, steps, tmp_path=None, injector_kw=None, **kw):
    injector = FaultInjector(schedule, seed=0, **(injector_kw or {}))
    if tmp_path is not None:
        kw.setdefault("checkpoint_every", 2)
        kw.setdefault("checkpoint_path", str(tmp_path / "ckpt"))
    trainer = _trainer(cfg, resilient=True, injector=injector, **kw)
    log = trainer.train_steps(steps)
    return trainer, log, injector


class TestZeroOverheadWhenOff:
    def test_simulator_default_has_no_injector(self, mesh2):
        assert mesh2.sim.fault_injector is None

    def test_empty_schedule_is_bit_identical(self, cfg):
        base, base_log = _baseline(cfg, 3)
        chaos, chaos_log, _ = _chaos(cfg, FaultSchedule(), 3)
        assert chaos_log.losses == base_log.losses  # bit-exact, not approx
        assert chaos.sim.elapsed() == base.sim.elapsed()
        for r in base.sim.ranks:
            assert (
                chaos.sim.device(r).bytes_comm == base.sim.device(r).bytes_comm
            )


class TestTransientFaults:
    def test_flaky_retry_preserves_trajectory(self, cfg):
        base, base_log = _baseline(cfg, 3)
        fault = TransientCollectiveFault(
            step=1, index=1, kind="reduce", fails=2, mode="flaky"
        )
        chaos, chaos_log, inj = _chaos(cfg, FaultSchedule.of(fault), 3)
        assert chaos_log.losses == base_log.losses
        assert inj.stats["retries"] == 2
        # failed attempts and backoff are priced on the simulated clock
        assert chaos.sim.elapsed() > base.sim.elapsed()
        assert chaos.metrics.counter("resilience/retries", kind="reduce").value == 2

    def test_timeout_mode_charges_the_timeout(self, cfg):
        base, _ = _baseline(cfg, 2)
        fault = TransientCollectiveFault(
            step=1, index=0, kind="any", fails=1, mode="timeout"
        )
        chaos, _, inj = _chaos(
            cfg, FaultSchedule.of(fault), 2, injector_kw={"timeout_s": 5.0}
        )
        assert inj.stats["retries"] == 1
        assert chaos.sim.elapsed() - base.sim.elapsed() >= 5.0

    def test_exhausted_retries_raise_without_checkpoint(self, cfg):
        fault = TransientCollectiveFault(
            step=1, index=0, kind="any", fails=10, mode="flaky"
        )
        with pytest.raises(CollectiveTimeoutError):
            _chaos(cfg, FaultSchedule.of(fault), 2, injector_kw={"max_retries": 2})

    def test_exhausted_retries_recover_from_checkpoint(self, cfg, tmp_path):
        _, base_log = _baseline(cfg, 4)
        fault = TransientCollectiveFault(
            step=3, index=0, kind="any", fails=10, mode="flaky"
        )
        chaos, chaos_log, _ = _chaos(
            cfg, FaultSchedule.of(fault), 4, tmp_path,
            injector_kw={"max_retries": 2},
        )
        assert chaos_log.losses == base_log.losses
        assert [r["cause"] for r in chaos.recoveries] == ["CollectiveTimeoutError"]

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            TransientCollectiveFault(step=0, mode="explode")


class TestSDCGuards:
    def test_corrupted_message_detected_and_step_reexecuted(self, cfg):
        # probe how many grad-path reduces one step issues, then corrupt one
        # in the backward pass: the guard must trip and re-run the step
        probe_inj = FaultInjector(FaultSchedule(), seed=0)
        _trainer(cfg, resilient=True, injector=probe_inj).train_steps(1)
        corrupt_index = int(0.75 * probe_inj._kind_counts["reduce"])

        _, base_log = _baseline(cfg, 3)
        fault = MessageCorruption(step=1, index=corrupt_index, kind="reduce")
        chaos, chaos_log, inj = _chaos(cfg, FaultSchedule.of(fault), 3)
        assert inj.stats["corruptions"] == 1
        assert chaos.metrics.counter("resilience/sdc_detected").value >= 1
        assert chaos.metrics.counter("resilience/step_retries").value >= 1
        assert chaos_log.losses == base_log.losses

    def test_gradient_bitflip_detected_and_step_reexecuted(self, cfg):
        _, base_log = _baseline(cfg, 3)
        chaos, chaos_log, inj = _chaos(
            cfg, FaultSchedule.of(GradientSDC(step=1)), 3
        )
        assert inj.stats["sdc_injected"] == 1
        assert chaos.metrics.counter("resilience/sdc_detected").value >= 1
        assert chaos_log.losses == base_log.losses


class TestCrashRecovery:
    def test_crash_restores_bit_exact_trajectory(self, cfg, tmp_path):
        base, base_log = _baseline(cfg, 5)
        chaos, chaos_log, inj = _chaos(
            cfg, FaultSchedule.of(RankCrash(step=3, rank=2)), 5, tmp_path
        )
        assert inj.stats["crashes"] == 1
        assert chaos_log.losses == base_log.losses
        assert len(chaos.recoveries) == 1
        rec = chaos.recoveries[0]
        assert rec["failed_step"] == 3 and rec["restored_step"] == 2
        assert chaos.metrics.histogram("resilience/mttr").count == 1
        # downtime (restart cost + checkpoint reload) lands on the clock
        assert chaos.sim.elapsed() >= base.sim.elapsed() + chaos.restart_cost_s

    def test_crash_without_checkpoint_is_fatal(self, cfg):
        with pytest.raises(RankCrashError, match="rank 1 crashed at step 1"):
            _chaos(cfg, FaultSchedule.of(RankCrash(step=1, rank=1)), 2)


class TestStraggler:
    def test_straggler_slows_clock_not_numerics(self, cfg):
        base, base_log = _baseline(cfg, 3)
        fault = Straggler(rank=0, start_step=1, num_steps=2, factor=3.0)
        chaos, chaos_log, _ = _chaos(cfg, FaultSchedule.of(fault), 3)
        assert chaos_log.losses == base_log.losses
        assert chaos.sim.elapsed() > base.sim.elapsed()
        assert chaos.metrics.counter("resilience/straggler_time").value > 0


class TestChaosCampaign:
    def test_quick_campaign_is_deterministic_and_bit_exact(self, tmp_path):
        first = run_campaign(seed=0, quick=True, schemes=("optimus",))
        second = run_campaign(seed=0, quick=True, schemes=("optimus",))
        assert first == second  # same seed, byte-identical report
        assert first["ok"]
        (result,) = first["schemes"]
        assert result["loss_match"] and result["faults_fired"]
        assert result["recovery_overhead_s"] > 0
        assert result["mttr_s"]
