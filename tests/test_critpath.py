"""Critical-path analyzer: conservation, determinism, zero-drift, export.

The analyzer's contract is unusual for a profiler: attribution must sum to
the step wall-clock *exactly* (integer nanoseconds, not a tolerance), the
whole document must be byte-stable across identical seeded runs, and the
tracer feeding it must not move a single clock, byte or loss value.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core.model import OptimusModel
from repro.mesh.mesh import Mesh
from repro.nn.init import init_transformer_params
from repro.obs.critpath import (
    CATEGORIES,
    attribution_summary,
    build_windows,
    critpath_report,
)
from repro.obs.flamegraph import render_folded, validate_folded
from repro.obs.ledger import canonical_json
from repro.runtime.simulator import Simulator


def _optimus_stem(trace: bool = True, q: int = 2, backend: str = "numpy"):
    cfg = tiny_config(num_layers=2)
    sim = Simulator.for_mesh(q=q, backend=backend, trace=trace)
    dtype = "float32" if backend == "shape" else "float64"
    params = init_transformer_params(cfg, backend=backend, dtype=dtype)
    model = OptimusModel(Mesh(sim, q), cfg, params, stem_only=True)
    model.stem_forward(4)
    model.stem_backward()
    return sim


def _megatron_stem(trace: bool = True, p: int = 2):
    from repro.megatron.model import MegatronModel

    cfg = tiny_config(num_layers=2)
    sim = Simulator.for_flat(p=p, backend="numpy", trace=trace)
    params = init_transformer_params(cfg, backend="numpy", dtype="float64")
    model = MegatronModel(sim, cfg, params, stem_only=True)
    model.stem_forward(4)
    model.stem_backward()
    return sim


def _hybrid_iteration(trace: bool = True, num_replicas: int = 2, q: int = 2):
    from repro.hardware.specs import frontera_rtx
    from repro.hybrid.data_parallel import DataParallel
    from repro.training.data import random_batch

    cfg = tiny_config(num_layers=2)
    total = num_replicas * q * q
    sim = Simulator(
        frontera_rtx(-(-total // 4), 4), num_ranks=total,
        backend="numpy", trace=trace,
    )
    params = init_transformer_params(cfg, seed=0, backend="numpy", dtype="float64")
    dp = DataParallel(sim, cfg, params, num_replicas, q)
    ids, labels = random_batch(cfg, num_replicas * 2, seed=1)
    dp.forward_backward(ids, labels)
    return sim


def _assert_conserved(sim):
    doc = critpath_report(sim)
    assert doc["windows"], "analyzer produced no windows"
    for w in doc["windows"]:
        assert w["conservation_ok"]
        for att in w["per_rank"]:
            assert att["total_ns"] == w["wall_ns"]
            assert sum(att[c + "_ns"] for c in CATEGORIES) == att["total_ns"]
        # the critical path itself also partitions the window exactly
        assert w["critical_path"]["total_ns"] == w["wall_ns"]
    return doc


class TestConservation:
    """Attributed time telescopes to the wall-clock, in exact integers."""

    def test_optimus_stem(self):
        _assert_conserved(_optimus_stem())

    def test_megatron_stem(self):
        _assert_conserved(_megatron_stem())

    def test_hybrid_iteration(self):
        _assert_conserved(_hybrid_iteration())

    def test_summary_flags_conservation(self):
        summary = attribution_summary(_optimus_stem())
        assert summary["conservation_ok"]
        assert summary["schema"] == "repro-critpath-v1"
        assert summary["per_rank_sum"]["total_ns"] == (
            summary["wall_clock_ns"] * 4
        )

    def test_untraced_run_raises(self):
        with pytest.raises(ValueError, match="trace"):
            critpath_report(_optimus_stem(trace=False))


class TestDeterminism:
    """Two identical seeded runs serialize to identical bytes."""

    def test_report_is_byte_stable(self):
        a = canonical_json(critpath_report(_optimus_stem()))
        b = canonical_json(critpath_report(_optimus_stem()))
        assert a == b

    def test_windows_dag_is_deterministic(self):
        wa = build_windows(_optimus_stem())
        wb = build_windows(_optimus_stem())
        assert len(wa) == len(wb)
        for x, y in zip(wa, wb):
            assert (x.label, x.start_ns, x.end_ns) == (y.label, y.start_ns, y.end_ns)
            assert list(x.timelines) == list(y.timelines)
            for r in x.timelines:
                assert x.timelines[r] == y.timelines[r]

    def test_folded_is_byte_stable(self):
        assert render_folded(_optimus_stem()) == render_folded(_optimus_stem())


class TestZeroDrift:
    """Tracing on vs off changes no clock, byte counter or result."""

    def test_clocks_and_counters_identical(self):
        on, off = _optimus_stem(trace=True), _optimus_stem(trace=False)
        assert on.elapsed() == off.elapsed()
        for a, b in zip(on.devices, off.devices):
            assert a.compute_time == b.compute_time
            assert a.comm_time == b.comm_time
            assert a.bytes_comm == b.bytes_comm
        assert on.peak_memory() == off.peak_memory()

    def test_analysis_does_not_mutate_the_sim(self):
        sim = _optimus_stem()
        before = (sim.elapsed(), len(sim.tracer.events), len(sim.tracer.spans),
                  tuple(d.comm_time for d in sim.devices))
        critpath_report(sim)
        attribution_summary(sim)
        render_folded(sim)
        after = (sim.elapsed(), len(sim.tracer.events), len(sim.tracer.spans),
                 tuple(d.comm_time for d in sim.devices))
        assert before == after


class TestCriticalPath:
    def test_path_is_contiguous_and_backward_justified(self):
        doc = critpath_report(_optimus_stem())
        for w in doc["windows"]:
            cp = w["critical_path"]
            path = cp["segments"]
            assert path, "empty critical path"
            assert not cp["path_truncated"]
            # oldest-first, non-overlapping in time
            for prev, cur in zip(path, path[1:]):
                assert prev["end_ns"] <= cur["start_ns"]
            assert path[-1]["end_ns"] <= w["end_ns"]

    def test_bottlenecks_ranked_with_predictions(self):
        doc = critpath_report(_optimus_stem(backend="shape"))
        rows = doc["windows"][0]["bottlenecks"]
        assert rows
        measured = [r["measured_ns"] for r in rows]
        assert measured == sorted(measured, reverse=True)
        comm = [r for r in rows if r["category"] == "comm"]
        assert comm, "stem has collectives; expected comm bottlenecks"
        for r in comm:
            assert r["predicted_ns"] > 0
            # single-node 2x2 mesh: the solo α–β model is the actual cost
            # model, so measured and predicted agree to ns rounding
            assert r["ratio"] == pytest.approx(1.0, rel=0.05)

    def test_by_kind_covers_collectives(self):
        doc = critpath_report(_optimus_stem())
        kinds = {k for w in doc["windows"] for k in w["by_kind"]}
        assert "broadcast" in kinds and "reduce" in kinds


class TestFoldedFlamegraph:
    def test_output_is_valid_folded_format(self):
        text = render_folded(_optimus_stem())
        assert text
        assert validate_folded(text) is None

    def test_self_times_sum_to_busy_time(self):
        sim = _optimus_stem()
        per_rank: dict = {}
        for line in render_folded(sim).splitlines():
            stack, _, value = line.rpartition(" ")
            rank = stack.split(";", 1)[0]
            per_rank[rank] = per_rank.get(rank, 0) + int(value)
        # flamegraph is busy-only: each rank's frames sum to its busy ns
        windows = build_windows(sim)
        busy: dict = {}
        for w in windows:
            for r, segs in w.timelines.items():
                busy[f"rank{r}"] = busy.get(f"rank{r}", 0) + sum(
                    s.duration_ns for s in segs if s.category != "stall"
                )
        assert per_rank == busy

    def test_validator_rejects_malformed_lines(self):
        assert validate_folded("a;b notanumber\n") is not None
        assert validate_folded("a;;b 10\n") is not None
        assert validate_folded("onlyframes\n") is not None


class TestCLI:
    def test_json_output_is_byte_stable(self):
        from repro.obs.critpath import main

        outputs = []
        for _ in range(2):
            lines: list = []
            assert main("tiny", as_json=True, printer=lines.append) == 0
            outputs.append("\n".join(lines))
        assert outputs[0] == outputs[1]
        doc = json.loads(outputs[0])
        assert doc["schema"] == "repro-critpath-v1"

    def test_writes_json_and_folded_artifacts(self, tmp_path):
        from repro.obs.critpath import main

        out, folded = tmp_path / "cp.json", tmp_path / "cp.folded"
        rc = main("tiny", out=str(out), folded=str(folded),
                  printer=lambda _m: None)
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["totals"]["per_rank_sum"]["total_ns"] > 0
        assert validate_folded(folded.read_text()) is None


class TestLedgerAttribution:
    def test_stem_record_carries_summary(self, tmp_path):
        from repro.experiments.runner import run_optimus_stem
        from repro.obs.ledger import RunLedger

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_optimus_stem(tiny_config(num_layers=2), 2, 2, ledger=led, trace=True)
        rec = led.read()[-1]
        assert rec.attribution is not None
        assert rec.attribution["conservation_ok"]
        assert rec.attribution["top_bottlenecks"]

    def test_untraced_record_has_no_summary(self, tmp_path):
        from repro.experiments.runner import run_optimus_stem
        from repro.obs.ledger import RunLedger

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_optimus_stem(tiny_config(num_layers=2), 2, 2, ledger=led)
        assert led.read()[-1].attribution is None


class TestLedgerCompact:
    def _fill(self, path) -> list:
        from repro.experiments.runner import run_optimus_stem
        from repro.obs.ledger import RunLedger

        led = RunLedger(str(path))
        cfg = tiny_config(num_layers=2)
        for batch in (2, 2, 4):  # identical batches dedupe to one key
            run_optimus_stem(cfg, 2, batch, ledger=led)
        run_optimus_stem(tiny_config(num_layers=3), 2, 2, ledger=led)
        return led.read()

    def test_keeps_latest_per_key_and_preserves_bytes(self, tmp_path):
        from repro.obs.ledger import compact

        path = tmp_path / "ledger.jsonl"
        before_records = self._fill(path)
        before_lines = path.read_text().splitlines()
        stats = compact(str(path))
        assert stats["read"] == 4
        # batch is not part of the key -> three same-config runs collapse
        assert stats["kept"] == 2 and stats["dropped"] == 2
        after_lines = path.read_text().splitlines()
        assert len(after_lines) == 2
        # surviving lines are byte-identical to their originals, in order
        positions = [before_lines.index(line) for line in after_lines]
        assert positions == sorted(positions)
        assert all(line in before_lines for line in after_lines)
        kept_ids = {json.loads(line)["run_id"] for line in after_lines}
        assert before_records[-1].run_id in kept_ids  # latest survives

    def test_round_trip_and_idempotence(self, tmp_path):
        from repro.obs.ledger import RunLedger, compact

        path = tmp_path / "ledger.jsonl"
        self._fill(path)
        compact(str(path))
        first = path.read_text()
        records = RunLedger(str(path)).read()  # still parses cleanly
        assert all(r.run_id for r in records)
        stats = compact(str(path))
        assert stats["dropped"] == 0
        assert path.read_text() == first

    def test_out_path_leaves_source_untouched(self, tmp_path):
        from repro.obs.ledger import compact

        src = tmp_path / "ledger.jsonl"
        self._fill(src)
        before = src.read_text()
        dst = tmp_path / "compacted.jsonl"
        compact(str(src), out=str(dst))
        assert src.read_text() == before
        assert len(dst.read_text().splitlines()) == 2


class TestCounterRestart:
    """OpenMetrics counter-restart semantics across a checkpoint resume."""

    def _trainer(self):
        from repro.training.data import BatchStream
        from repro.training.trainer import make_serial_trainer

        cfg = tiny_config(num_layers=2)
        return make_serial_trainer(cfg, BatchStream.copy_task(cfg, 4, seed=0),
                                   seed=1)

    def test_counters_survive_resume_monotonically(self, tmp_path):
        from repro.obs.openmetrics import render_registry, validate_openmetrics

        tr = self._trainer()
        tr.train_steps(3)
        steps = tr.metrics.counter("train/steps")
        assert steps.value == 3.0 and steps.created == 0
        path = str(tmp_path / "ck.npz")
        tr.save(path)

        # mid-campaign restart: the fresh process trains a little before
        # resuming, and the restored counter must never move backwards
        tr2 = self._trainer()
        tr2.train_steps(1)
        tr2.resume(path)
        restored = tr2.metrics.counter("train/steps")
        assert restored.value == 3.0  # max(live=1, saved=3)
        assert restored.created == 1  # reset epoch bumped
        text = render_registry(tr2.metrics)
        assert validate_openmetrics(text) == []
        assert "repro_train_steps_created 1" in text.splitlines()

    def test_second_resume_bumps_epoch_again(self, tmp_path):
        tr = self._trainer()
        tr.train_steps(2)
        p1 = str(tmp_path / "a.npz")
        tr.save(p1)
        tr2 = self._trainer()
        tr2.resume(p1)
        tr2.train_steps(2)
        p2 = str(tmp_path / "b.npz")
        tr2.save(p2)
        tr3 = self._trainer()
        tr3.resume(p2)
        c = tr3.metrics.counter("train/steps")
        assert c.value == 4.0
        assert c.created == 2

    def test_validator_accepts_created_and_rejects_other_suffixes(self):
        good = ("# TYPE x counter\nx_total 3\nx_created 1\n# EOF\n")
        bad = "# TYPE x counter\nx_sum 3\n# EOF\n"
        from repro.obs.openmetrics import validate_openmetrics

        assert validate_openmetrics(good) == []
        assert any("must end in" in p for p in validate_openmetrics(bad))


class TestDashIntegration:
    def test_attribution_rows_and_section_render(self, tmp_path):
        from repro.experiments.runner import run_optimus_stem
        from repro.obs.dash import _attribution_section, attribution_rows
        from repro.obs.ledger import RunLedger

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_optimus_stem(tiny_config(num_layers=2), 2, 2, ledger=led, trace=True)
        rows = attribution_rows(led.read())
        assert len(rows) == 1 and rows[0]["conservation_ok"]
        html_text = _attribution_section(rows)
        assert "Attribution" in html_text and "PASS" in html_text

    def test_sparkline_series_keyed_on_git_rev(self):
        from repro.obs.dash import _sparkline, sparkline_series
        from repro.obs.ledger import RunRecord

        def rec(git, clock):
            return RunRecord(kind="train", scheme="optimus", label="t",
                             clock=clock, git=git)

        series = sparkline_series([rec("aaa", 1.0), rec("aaa", 2.0),
                                   rec("bbb", 3.0)])
        # newest value per revision, in first-appearance order
        assert series["clock"] == [("aaa", 2.0), ("bbb", 3.0)]
        svg = _sparkline(series["clock"])
        assert svg.startswith("<svg") and "polyline" in svg


def test_mean_over_categories_matches_numpy():
    """CATEGORIES covers the full attribution split (guards tuple edits)."""
    doc = critpath_report(_optimus_stem())
    att = doc["windows"][0]["per_rank"][0]
    parts = np.array([att[c + "_ns"] for c in CATEGORIES], dtype=np.int64)
    assert int(parts.sum()) == att["total_ns"]
