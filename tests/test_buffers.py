"""The §3.2.3 buffer manager: regions, managed/unmanaged semantics, ablations."""

import pytest

from repro.core.buffers import REGIONS, BufferManager
from repro.runtime import Simulator


def _mgr(**kw):
    sim = Simulator.for_flat(p=2)
    return sim, BufferManager(sim, **kw)


class TestManagedMode:
    def test_arena_grows_to_high_water(self):
        sim, m = _mgr(managed=True)
        m.hold("forward", 0, 100)
        m.hold("forward", 0, 50)
        assert m.usage("forward", 0) == 150
        assert m.capacity("forward", 0) == 150
        m.release("forward", 0, 150)
        m.hold("forward", 0, 120)  # fits in the retained arena: no new alloc
        assert m.capacity("forward", 0) == 150
        assert sim.device(0).memory.current == 150

    def test_alloc_events_minimal(self):
        sim, m = _mgr(managed=True)
        for _ in range(10):
            m.hold("workspace", 0, 64)
            m.release("workspace", 0, 64)
        # one growth event only — the paper's anti-fragmentation claim
        assert sim.device(0).memory.num_allocs == 1

    def test_reset_region_keeps_arena(self):
        sim, m = _mgr(managed=True)
        m.hold("forward", 0, 200)
        m.reset_region("forward")
        assert m.usage("forward", 0) == 0
        assert sim.device(0).memory.current == 200

    def test_scratch_context(self):
        sim, m = _mgr(managed=True)
        with m.scratch(0, 500):
            assert m.usage("workspace", 0) == 500
        assert m.usage("workspace", 0) == 0
        assert m.capacity("workspace", 0) == 500


class TestUnmanagedMode:
    def test_every_hold_is_an_alloc(self):
        sim, m = _mgr(managed=False)
        for _ in range(10):
            m.hold("workspace", 0, 64)
            m.release("workspace", 0, 64)
        assert sim.device(0).memory.num_allocs == 10
        assert sim.device(0).memory.current == 0

    def test_release_frees_real_memory(self):
        sim, m = _mgr(managed=False)
        m.hold("forward", 0, 100)
        assert sim.device(0).memory.current == 100
        m.release("forward", 0, 100)
        assert sim.device(0).memory.current == 0

    def test_reset_region_frees(self):
        sim, m = _mgr(managed=False)
        m.hold("backward", 0, 300)
        m.reset_region("backward")
        assert sim.device(0).memory.current == 0


class TestAblationOptions:
    def test_merge_fwd_bwd_shares_arena(self):
        """§3.2.3 option 1: forward and backward share one region."""
        sim, m = _mgr(managed=True, merge_fwd_bwd=True)
        m.hold("forward", 0, 100)
        m.reset_region("forward")
        m.hold("backward", 0, 80)  # reuses the forward arena
        assert m.capacity("forward", 0) == 100
        assert sim.device(0).memory.current == 100  # no separate backward arena

    def test_unmerged_uses_both(self):
        sim, m = _mgr(managed=True, merge_fwd_bwd=False)
        m.hold("forward", 0, 100)
        m.hold("backward", 0, 80)
        assert sim.device(0).memory.current == 180

    def test_total_capacity(self):
        _, m = _mgr()
        m.hold("forward", 0, 10)
        m.hold("param_grad", 0, 20)
        assert m.total_capacity(0) == 30


class TestValidation:
    def test_unknown_region(self):
        _, m = _mgr()
        with pytest.raises(ValueError):
            m.hold("nonsense", 0, 1)

    def test_over_release(self):
        _, m = _mgr()
        m.hold("forward", 0, 10)
        with pytest.raises(ValueError):
            m.release("forward", 0, 20)

    def test_release_all(self):
        sim, m = _mgr(managed=True)
        for region in REGIONS:
            m.hold(region, 0, 10)
        m.release_all()
        assert sim.device(0).memory.current == 0
        assert m.total_capacity(0) == 0
