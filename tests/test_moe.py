"""Mixture-of-Experts extension (§6): reference gradients, 2D equivalence,
routing invariants, and the communication claim (gate-only extra traffic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.shape_array import ShapeArray
from repro.core.cls_head import assemble_row0_blockrows
from repro.core.moe import MoE2D, _balanced_counts
from repro.mesh import Mesh, assemble_blocked_2d, distribute_blocked_2d
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.partition import assemble_row0_cols
from repro.reference.moe import ReferenceMoE, init_moe_params
from repro.runtime import Simulator
from tests.conftest import make_mesh

H, E, T = 12, 3, 24


@pytest.fixture
def moe_setup(rng):
    params = init_moe_params(H, E, seed=1)
    x = rng.normal(size=(T, H))
    dy = rng.normal(size=(T, H))
    return params, x, dy


class TestReferenceMoE:
    def test_output_shape_and_aux(self, moe_setup):
        params, x, _ = moe_setup
        moe = ReferenceMoE(params, E)
        y, aux = moe.forward(x)
        assert y.shape == x.shape
        assert aux > 0  # E·Σ fₑmₑ ≥ E·(1/E)·(1/E)·E = 1/E times coef > 0

    def test_aux_loss_minimal_when_balanced(self):
        """Perfectly uniform gate probabilities minimize the aux loss."""
        params = init_moe_params(H, E, seed=1)
        params["moe.gate.weight"][:] = 0.0  # uniform gate
        moe = ReferenceMoE(params, E, aux_loss_coef=1.0)
        rng = np.random.default_rng(0)
        _, aux_uniform = moe.forward(rng.normal(size=(T, H)))
        # aux = E · Σ fₑ·mₑ with mₑ = 1/E → Σ fₑ/E · E = 1 exactly
        assert aux_uniform == pytest.approx(1.0)

    def test_every_token_processed_once(self, moe_setup):
        params, x, _ = moe_setup
        moe = ReferenceMoE(params, E)
        load = moe.expert_load(x)
        assert load.sum() == T

    def test_input_gradient_matches_finite_differences(self, moe_setup, rng):
        params, x, dy = moe_setup
        moe = ReferenceMoE(params, E)
        moe.forward(x)
        dx = moe.backward(dy)

        def total(x2):
            m = ReferenceMoE(params, E)
            y2, aux2 = m.forward(x2)
            return float(np.sum(y2 * dy) + aux2)

        eps = 1e-7
        for _ in range(6):
            i, j = rng.integers(0, T), rng.integers(0, H)
            xp, xm = x.copy(), x.copy()
            xp[i, j] += eps
            xm[i, j] -= eps
            num = (total(xp) - total(xm)) / (2 * eps)
            assert abs(num - dx[i, j]) < 1e-5 * max(1.0, abs(num))

    @pytest.mark.parametrize(
        "name", ["moe.gate.weight", "moe.expert0.w1", "moe.expert1.w2", "moe.expert2.b2"]
    )
    def test_param_gradients(self, moe_setup, rng, name):
        params, x, dy = moe_setup
        moe = ReferenceMoE(params, E)
        moe.forward(x)
        moe.backward(dy)
        g = moe.grads[name]
        p = params[name]

        def total():
            m = ReferenceMoE(params, E)
            y2, aux2 = m.forward(x)
            return float(np.sum(y2 * dy) + aux2)

        eps = 1e-7
        for _ in range(4):
            idx = tuple(rng.integers(0, d) for d in p.shape)
            old = p[idx]
            p[idx] = old + eps
            fp = total()
            p[idx] = old - eps
            fm = total()
            p[idx] = old
            num = (fp - fm) / (2 * eps)
            assert abs(num - g[idx]) < 1e-5 * max(1.0, abs(num)), (name, idx)

    def test_backward_requires_forward(self, moe_setup):
        params, _, dy = moe_setup
        with pytest.raises(RuntimeError):
            ReferenceMoE(params, E).backward(dy)


class TestMoE2D:
    def _grads(self, moe):
        out = {}
        for p in moe.parameters():
            if p.grad is None:
                continue
            if p.data.layout == BLOCKED_2D:
                out[p.name] = assemble_blocked_2d(p.grad)
            elif p.data.layout.kind == "row0_blockrows":
                out[p.name] = assemble_row0_blockrows(p.grad)
            else:
                out[p.name] = assemble_row0_cols(p.grad)
        return out

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_matches_reference(self, moe_setup, q):
        params, x, dy = moe_setup
        ref = ReferenceMoE(params, E)
        y_ref, aux_ref = ref.forward(x)
        dx_ref = ref.backward(dy)

        mesh = make_mesh(q)
        moe = MoE2D(mesh, params, E)
        y, aux = moe.forward(distribute_blocked_2d(mesh, x))
        np.testing.assert_allclose(assemble_blocked_2d(y), y_ref, rtol=1e-10, atol=1e-13)
        assert aux == pytest.approx(aux_ref, rel=1e-10)
        dx = moe.backward(distribute_blocked_2d(mesh, dy))
        np.testing.assert_allclose(assemble_blocked_2d(dx), dx_ref, rtol=1e-9, atol=1e-12)
        grads = self._grads(moe)
        for name, g_ref in ref.grads.items():
            np.testing.assert_allclose(grads[name], g_ref, rtol=1e-9, atol=1e-12,
                                       err_msg=name)

    def test_moe_traffic_is_gate_only_plus_expert_summa(self, moe_setup):
        """§6 claim: the only MoE-specific collectives are the small gate
        broadcasts/all-reduces — token dispatch moves no data between
        devices."""
        params, x, dy = moe_setup
        mesh = make_mesh(2)
        mesh.sim.tracer.enabled = True
        moe = MoE2D(mesh, params, E)
        moe.forward(distribute_blocked_2d(mesh, x))
        kinds = {e.kind for e in mesh.sim.tracer.events}
        # broadcast (gate + bias + SUMMA) and all_reduce (gate logits, aux);
        # crucially there is no gather/scatter/all-to-all of token data
        assert kinds <= {"broadcast", "all_reduce", "reduce", "compute"}

    def test_dryrun_balanced_assumption(self, moe_setup):
        params, _, _ = moe_setup
        sim = Simulator.for_mesh(q=2, backend="shape")
        mesh = Mesh(sim, 2)
        params_s = {k: ShapeArray(v.shape, "float32") for k, v in params.items()}
        moe = MoE2D(mesh, params_s, E)
        xs = distribute_blocked_2d(mesh, ShapeArray((T, H), "float32"))
        y, aux = moe.forward(xs)
        assert y.local(0).shape == (T // 2, H // 2)
        assert aux.shape == ()
        dx = moe.backward(distribute_blocked_2d(mesh, ShapeArray((T, H), "float32")))
        assert dx.local(0).shape == (T // 2, H // 2)
        assert sim.elapsed() > 0

    def test_param_inventory(self, moe_setup):
        params, _, _ = moe_setup
        moe = MoE2D(make_mesh(2), params, E)
        names = {p.name for p in moe.parameters()}
        assert f"moe.gate.weight" in names
        assert {f"moe.expert{e}.w1" for e in range(E)} <= names
        assert len(names) == 1 + 4 * E


@given(st.integers(1, 50), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_balanced_counts_property(total, parts):
    counts = _balanced_counts(total, parts)
    assert sum(counts) == total
    assert max(counts) - min(counts) <= 1
