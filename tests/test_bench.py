"""Bench subsystem: CLI, result schema, regression gate, and the hot-path
optimizations it measures (plan cache, scratch pool, legacy A/B arm)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.core import Comparison, compare, render_comparison
from repro.cli import main as cli_main
from repro.core import summa
from repro.mesh.partition import assemble_blocked_2d, distribute_blocked_2d
from tests.conftest import make_mesh


def _doc(wall: float, unit: float = 1.0, name: str = "micro/x") -> dict:
    return {
        "schema": "repro-bench-v1",
        "host": {},
        "calibration": {"unit_time": unit},
        "benchmarks": {name: {"wall_time": wall, "wall_times": [wall]}},
    }


class TestCompare:
    def test_identical_runs_pass(self):
        rows = compare(_doc(1.0), _doc(1.0))
        assert [c.regressed for c in rows] == [False]
        assert rows[0].ratio == pytest.approx(1.0)

    def test_regression_beyond_threshold_flags(self):
        rows = compare(_doc(1.3), _doc(1.0), threshold=0.20)
        assert rows[0].regressed

    def test_calibration_normalizes_machine_speed(self):
        # current machine is 2x slower (unit 2.0) and the bench took 2x the
        # wall-clock: normalized ratio is 1.0, not a regression
        rows = compare(_doc(2.0, unit=2.0), _doc(1.0, unit=1.0))
        assert rows[0].ratio == pytest.approx(1.0)
        assert not rows[0].regressed

    def test_benchmarks_missing_from_either_side_are_skipped(self):
        rows = compare(_doc(1.0, name="micro/a"), _doc(1.0, name="micro/b"))
        assert rows == []

    def test_unknown_schema_rejected(self):
        bad = _doc(1.0)
        bad["schema"] = "something-else"
        with pytest.raises(ValueError, match="schema"):
            compare(_doc(1.0), bad)

    def test_render_mentions_regressions(self):
        rows = [
            Comparison("micro/x", 1.0, 2.0, 2.0, 2.0, True),
            Comparison("micro/y", 1.0, 1.0, 1.0, 1.0, False),
        ]
        text = render_comparison(rows, 0.2)
        assert "REGRESSED" in text and "ok" in text


class TestBenchCLI:
    def test_run_writes_schema_valid_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = cli_main(
            ["bench", "--only", "micro/collectives", "--repeats", "1",
             "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-bench-v1"
        assert doc["calibration"]["unit_time"] > 0
        entry = doc["benchmarks"]["micro/collectives"]
        assert entry["wall_time"] > 0
        assert entry["wall_times"] and len(entry["wall_times"]) == 1
        assert entry["peak_rss_bytes"] > 0
        assert entry["sim_time"] > 0
        assert "calibration" in capsys.readouterr().out

    def test_compare_pass_and_regress_exit_codes(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert cli_main(
            ["bench", "--only", "micro/collectives", "--repeats", "1",
             "--out", str(out)]
        ) == 0
        # same machine, immediately re-run: must pass the gate
        assert cli_main(
            ["bench", "--only", "micro/collectives", "--repeats", "1",
             "--compare", str(out)]
        ) == 0
        assert "PASS" in capsys.readouterr().out
        # doctor the baseline to be far faster: current run must regress
        doc = json.loads(out.read_text())
        for entry in doc["benchmarks"].values():
            entry["wall_time"] /= 10
            if entry.get("norm_wall"):
                entry["norm_wall"] /= 10
        fast = tmp_path / "fast.json"
        fast.write_text(json.dumps(doc))
        assert cli_main(
            ["bench", "--only", "micro/collectives", "--repeats", "1",
             "--compare", str(fast)]
        ) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_unknown_pattern_errors(self):
        with pytest.raises(ValueError, match="no benchmark matches"):
            cli_main(["bench", "--only", "no/such/bench"])


def _random_operands(mesh, m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    a = distribute_blocked_2d(mesh, rng.standard_normal((m, k)).astype(np.float32))
    b = distribute_blocked_2d(mesh, rng.standard_normal((k, n)).astype(np.float32))
    return a, b


class TestPlanCache:
    def test_bit_exact_and_cost_identical_vs_uncached(self):
        def run(enabled):
            with summa.optimizations(plan_cache=enabled, pool=enabled):
                mesh = make_mesh(2)
                a, b = _random_operands(mesh, 8, 12, 6)
                outs = []
                for _ in range(3):  # repeated calls exercise cache hits
                    c = summa.summa_ab(mesh, a, b)
                    da, db = summa.grads_of_ab(mesh, a, b, c)
                    outs.append((c, da, db))
                sim = mesh.sim
                stats = (
                    sim.elapsed(),
                    sim.total_flops(),
                    sim.total_bytes_comm(),
                    sim.max_weighted_comm_volume(),
                )
                return outs, stats

        on, s_on = run(True)
        off, s_off = run(False)
        assert s_on == s_off
        for ts_on, ts_off in zip(on, off):
            for t1, t2 in zip(ts_on, ts_off):
                full1 = assemble_blocked_2d(t1)
                full2 = assemble_blocked_2d(t2)
                assert np.array_equal(full1, full2)

    def test_cache_populates_and_hits(self):
        mesh = make_mesh(2)
        a, b = _random_operands(mesh, 8, 12, 6)
        assert summa.plan_cache_size(mesh) == 0
        summa.summa_ab(mesh, a, b)
        assert summa.plan_cache_size(mesh) == 1
        summa.summa_ab(mesh, a, b)
        assert summa.plan_cache_size(mesh) == 1  # hit, no new plan
        summa.summa_atb(mesh, a, summa.summa_ab(mesh, a, b))  # new algo
        assert summa.plan_cache_size(mesh) >= 2

    def test_ragged_blocks_get_distinct_plans(self):
        # same global shape, different per-rank block shapes (MoE-style
        # ragged tensors) must not share a plan
        from repro.mesh.dtensor import DTensor
        from repro.mesh.layouts import BLOCKED_2D

        mesh = make_mesh(2)
        rng = np.random.default_rng(0)

        def ragged(rows):
            shards = {}
            r0 = 0
            for i in range(2):
                c0 = 0
                for j in range(2):
                    nrows = rows[i]
                    ncols = 6
                    shards[mesh.rank(i, j)] = rng.standard_normal(
                        (nrows, ncols)
                    ).astype(np.float32)
                    c0 += ncols
                r0 += rows[i]
            return DTensor(mesh, BLOCKED_2D, shards, (sum(rows), 12))

        b = distribute_blocked_2d(
            mesh, rng.standard_normal((12, 6)).astype(np.float32)
        )
        c1 = summa.summa_ab(mesh, ragged([3, 9]), b)
        c2 = summa.summa_ab(mesh, ragged([9, 3]), b)  # would crash on stale plan
        assert c1.shards[mesh.rank(0, 0)].shape[0] == 3
        assert c2.shards[mesh.rank(0, 0)].shape[0] == 9


class TestArrayPool:
    def test_acquire_release_reuses_backing(self):
        from repro.core.buffers import ArrayPool

        pool = ArrayPool()
        x = pool.acquire((4, 8), np.float32)
        assert x.shape == (4, 8) and x.dtype == np.float32 and x.flags["C_CONTIGUOUS"]
        pool.release(x)
        y = pool.acquire((8, 4), np.float32)  # same byte class, new shape
        assert pool.stats()["hits"] == 1
        pool.release(y)
        assert pool.stats()["free_buffers"] == 1

    def test_release_of_foreign_array_is_noop(self):
        from repro.core.buffers import ArrayPool

        pool = ArrayPool()
        pool.release(np.zeros(4))  # not pool-owned: must not raise
        assert pool.stats()["free_buffers"] == 0

    def test_summa_reuses_pool_across_calls(self):
        mesh = make_mesh(2)
        a, b = _random_operands(mesh, 8, 12, 6)
        for _ in range(3):
            summa.summa_ab(mesh, a, b)
        pool = mesh.sim._array_pool
        assert pool.stats()["hits"] > 0
        assert pool.stats()["live"] == 0  # everything released after the call


class TestInstrumentationFlag:
    def test_tracer_toggle_refreshes_is_enabled(self):
        mesh = make_mesh(2)
        sim = mesh.sim
        sim.strict_invariants = False  # may be on via REPRO_STRICT_INVARIANTS
        assert not sim.is_enabled
        sim.tracer.enabled = True
        assert sim.is_enabled
        sim.tracer.enabled = False
        assert not sim.is_enabled

    def test_strict_invariants_toggle_refreshes_is_enabled(self):
        mesh = make_mesh(2)
        sim = mesh.sim
        sim.strict_invariants = True
        assert sim.is_enabled
        sim.strict_invariants = False
        assert not sim.is_enabled


class TestLegacyArm:
    def test_pre_optimization_arm_is_numerically_identical(self):
        from repro.bench.legacy import pre_optimization

        def run():
            mesh = make_mesh(2)
            a, b = _random_operands(mesh, 8, 12, 6)
            c = summa.summa_ab(mesh, a, b)
            da, db = summa.grads_of_ab(mesh, a, b, c)
            return [assemble_blocked_2d(t) for t in (c, da, db)]

        current = run()
        with pre_optimization():
            legacy = run()
        post = run()  # patches must be fully restored
        for x, y, z in zip(current, legacy, post):
            assert np.array_equal(x, y)
            assert np.array_equal(x, z)

    def test_pre_optimization_restores_shape_backend(self):
        from repro.backend.shape_array import ShapeArray
        from repro.bench.legacy import pre_optimization

        x = ShapeArray((3, 4), "float32")
        with pre_optimization():
            assert ShapeArray((3, 4), "float32").nbytes == 48
        assert x.nbytes == 48
        assert (x @ ShapeArray((4, 5), "float32")).shape == (3, 5)


class TestSaveResultPreservation:
    def test_identical_rewrite_is_noop_and_diff_archives(self, tmp_path, monkeypatch):
        import benchmarks.conftest as bc

        monkeypatch.setattr(bc, "RESULTS_DIR", tmp_path)
        bc.save_result("t1", "alpha", metrics={"v": 1})
        assert (tmp_path / "t1.txt").read_text() == "alpha\n"
        mtime = (tmp_path / "t1.txt").stat().st_mtime_ns
        bc.save_result("t1", "alpha", metrics={"v": 1})  # identical: no-op
        assert (tmp_path / "t1.txt").stat().st_mtime_ns == mtime
        assert len(list(tmp_path.glob("t1*.txt"))) == 1
        bc.save_result("t1", "beta", metrics={"v": 2})  # differs: archived
        assert (tmp_path / "t1.txt").read_text() == "beta\n"
        assert len(list(tmp_path.glob("t1*.txt"))) == 2
        assert len(list(tmp_path.glob("t1*.json"))) == 2
