"""Experiment harness: runners and per-table/figure modules.

Full paper-scale sweeps live in benchmarks/; here we exercise every module
at reduced scale and assert the *qualitative claims* the paper makes.
"""

import dataclasses

import pytest

from repro.config import ModelConfig
from repro.experiments import fig7, fig8, fig9, table1, table2, table3
from repro.experiments.runner import run_megatron_stem, run_optimus_stem

SMALL = ModelConfig(
    vocab_size=51200, hidden_size=1024, num_heads=16, num_layers=4, seq_len=128
)


class TestRunner:
    def test_optimus_result_fields(self):
        r = run_optimus_stem(SMALL, q=2, batch_size=8)
        assert r.scheme == "optimus"
        assert r.num_devices == 4
        assert r.forward_time > 0 and r.backward_time > 0
        assert r.throughput == pytest.approx(8 / (r.forward_time + r.backward_time))
        assert r.inference == pytest.approx(8 / r.forward_time)
        assert r.forward_per_seq == pytest.approx(r.forward_time / 8)

    def test_megatron_result_fields(self):
        r = run_megatron_stem(SMALL, p=4, batch_size=8)
        assert r.scheme == "megatron"
        assert r.peak_memory_bytes > 0

    def test_backward_costlier_than_forward(self):
        """Checkpointed backward ≈ 3× forward for both schemes (§4)."""
        for r in (
            run_optimus_stem(SMALL, q=2, batch_size=8),
            run_megatron_stem(SMALL, p=4, batch_size=8),
        ):
            assert 2.0 < r.backward_time / r.forward_time < 3.5

    def test_no_checkpoint_backward_cheaper(self):
        with_ckpt = run_optimus_stem(SMALL, q=2, batch_size=8, checkpoint=True)
        without = run_optimus_stem(SMALL, q=2, batch_size=8, checkpoint=False)
        assert without.backward_time < with_ckpt.backward_time
        assert without.peak_memory_bytes > with_ckpt.peak_memory_bytes


class TestTable1:
    def test_formulas_validated(self):
        rows = table1.run(SMALL, p=4, batch_size=8)
        assert len(rows) == 8
        for r in rows:
            if r.quantity == "compute (MACs)":
                assert r.ratio == pytest.approx(1.0, rel=1e-6)
            else:
                assert 0.98 < r.ratio < 1.15
        out = table1.render(rows)
        assert "Table 1" in out and "megatron" in out


class TestTables2And3Reduced:
    """Reduced-scale weak/strong sweeps preserving the paper's orderings."""

    def _weak(self, h, n):
        # paper-scale per-layer shapes (the crossover regime), fewer layers
        return ModelConfig(vocab_size=51200, hidden_size=h, num_heads=n,
                           num_layers=4, seq_len=512)

    def test_weak_scaling_crossover(self):
        """Megatron ahead on one node; Optimus ahead by p=16 (Table 2)."""
        m4 = run_megatron_stem(self._weak(2048, 32), 4, 60)
        o4 = run_optimus_stem(self._weak(2048, 32), 2, 96)
        assert m4.throughput > o4.throughput
        m16 = run_megatron_stem(self._weak(4096, 64), 16, 60)
        o16 = run_optimus_stem(self._weak(4096, 64), 4, 192)
        assert o16.throughput > m16.throughput

    def test_strong_scaling_optimus_rises(self):
        """Optimus throughput increases with p at fixed problem (Table 3)."""
        cfg = self._weak(3072, 24)
        thr = [run_optimus_stem(cfg, q, 24).throughput for q in (2, 4, 8)]
        assert thr[0] < thr[1] < thr[2]

    def test_render(self):
        # renderers only need row objects; reuse a tiny run via dataclass
        r = run_megatron_stem(self._weak(512, 8), 4, 16)
        row = table2.Table2Row(r, (1, 2, 3, 4))
        assert "weak scaling" in table2.render([row])
        row3 = table3.Table3Row(r, (1, 2, 3, 4))
        assert "strong scaling" in table3.render([row3])


class TestFig7Reduced:
    def test_efficiency_points(self):
        cfg = ModelConfig(vocab_size=51200, hidden_size=512, num_heads=8,
                          num_layers=2, seq_len=128)
        r = run_optimus_stem(cfg, q=2, batch_size=8)
        t1 = fig7._serial_time(cfg, 8)
        pt = fig7.EfficiencyPoint("weak", "optimus", 4, r.forward_time + r.backward_time, t1)
        assert 0 < pt.efficiency <= 1.0
        assert "efficiency" in fig7.render([pt])


class TestFig8:
    def test_column_broadcast_speedup(self):
        """The paper's Fig. 8 claim: bunched beats naive on column traffic."""
        row = fig8.broadcast_comparison()
        assert row.speedup > 1.5

    def test_stem_comparison_small(self):
        cfg = dataclasses.replace(fig8.DEFAULT_CFG, num_layers=2)
        row = fig8.stem_comparison(cfg, q=4, batch_size=16)
        assert row.naive_time > 0 and row.bunched_time > 0
        assert "Figure 8" in fig8.render([row])


class TestFig9Reduced:
    def test_memory_limit_directions(self):
        """Fig. 9's shape at reduced scale: Optimus limit grows with p,
        Megatron's shrinks, Optimus ≫ Megatron at the largest p."""
        cap = 2 * 2**30  # pretend 2 GiB devices for the reduced problem

        def weak(h, n):
            return ModelConfig(vocab_size=51200, hidden_size=h, num_heads=n,
                               num_layers=4, seq_len=128)

        from repro.perfmodel import max_batch_size

        meg4 = max_batch_size("megatron", weak(512, 8), 4, cap)
        meg16 = max_batch_size("megatron", weak(1024, 16), 16, cap)
        opt4 = max_batch_size("optimus", weak(512, 8), 4, cap)
        opt16 = max_batch_size("optimus", weak(1024, 16), 16, cap)
        assert meg16 < meg4
        assert opt16 > opt4
        assert opt16 > 2 * meg16
        # the Optimus/Megatron limit ratio widens with p (8x at paper scale)
        assert opt16 / meg16 > opt4 / meg4

    def test_render(self):
        rows = [fig9.Fig9Row(4, "optimus", 2048, 96, None)]
        out = fig9.render(rows)
        assert "maximum batch" in out
        rows = [
            fig9.Fig9Row(64, "megatron", 8192, 60, 60),
            fig9.Fig9Row(64, "optimus", 8192, 480, 480),
        ]
        assert fig9.ratio_at(rows, 64) == pytest.approx(8.0)
