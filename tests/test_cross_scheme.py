"""Cross-scheme equivalence: Optimus ≡ Megatron ≡ serial reference, including
over multiple optimizer steps, plus the comparative claims the paper makes
about the two schemes (memory, communication pattern)."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.mesh import assemble_blocked_2d
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.partition import assemble_row0_cols, assemble_sharded_1d
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from repro.runtime import Simulator
from repro.training import SGD, SerialSGD
from tests.conftest import make_mesh


def _grads_of(model):
    out = {}
    for p in model.parameters():
        if p.data.layout == BLOCKED_2D:
            out[p.name] = assemble_blocked_2d(p.grad)
        elif p.data.layout.kind == "sharded_1d":
            out[p.name] = assemble_sharded_1d(p.grad)
        elif p.data.layout.kind == "row0_cols":
            out[p.name] = assemble_row0_cols(p.grad)
        else:
            out[p.name] = p.grad.local(next(iter(p.grad.shards)))
    return out


def test_three_implementations_agree(cfg, params, batch):
    ids, labels = batch
    ref = ReferenceTransformer(cfg, params)
    ref_loss, ref_grads = ref.loss_and_grads(ids, labels)

    opt_model = OptimusModel(make_mesh(2), cfg, params)
    opt_loss = opt_model.forward(ids, labels)
    opt_model.backward()

    meg_model = MegatronModel(Simulator.for_flat(p=2), cfg, params)
    meg_loss = meg_model.forward(ids, labels)
    meg_model.backward()

    assert opt_loss == pytest.approx(float(ref_loss), abs=1e-10)
    assert meg_loss == pytest.approx(float(ref_loss), abs=1e-10)
    og, mg = _grads_of(opt_model), _grads_of(meg_model)
    for name in ref_grads:
        np.testing.assert_allclose(og[name], ref_grads[name], rtol=1e-8, atol=1e-11)
        np.testing.assert_allclose(mg[name], ref_grads[name], rtol=1e-8, atol=1e-11)


def test_training_trajectories_identical(cfg, batch, rng):
    """Five SGD steps: all three implementations produce the same losses."""
    ids, labels = batch
    lr = 0.05
    losses = {}

    # serial
    params_ref = init_transformer_params(cfg, seed=1)
    ref = ReferenceTransformer(cfg, params_ref)
    opt_ref = SerialSGD(params_ref, lr=lr)
    traj = []
    for _ in range(5):
        loss, grads = ref.loss_and_grads(ids, labels)
        opt_ref.step(grads)
        traj.append(float(loss))
    losses["serial"] = traj

    # optimus
    params_o = init_transformer_params(cfg, seed=1)
    model_o = OptimusModel(make_mesh(2), cfg, params_o)
    opt_o = SGD(model_o.parameters(), lr=lr)
    traj = []
    for _ in range(5):
        opt_o.zero_grad()
        loss = model_o.forward(ids, labels)
        model_o.backward()
        opt_o.step()
        traj.append(float(loss))
    losses["optimus"] = traj

    # megatron
    params_m = init_transformer_params(cfg, seed=1)
    model_m = MegatronModel(Simulator.for_flat(p=3), cfg, params_m)
    opt_m = SGD(model_m.parameters(), lr=lr)
    traj = []
    for _ in range(5):
        opt_m.zero_grad()
        loss = model_m.forward(ids, labels)
        model_m.backward()
        opt_m.step()
        traj.append(float(loss))
    losses["megatron"] = traj

    np.testing.assert_allclose(losses["optimus"], losses["serial"], rtol=1e-9)
    np.testing.assert_allclose(losses["megatron"], losses["serial"], rtol=1e-9)
    assert losses["serial"][-1] < losses["serial"][0]  # actually learning


def test_optimus_distributes_activation_memory(rng):
    """§3.1.1: Optimus activation memory per device shrinks with p while
    Megatron's replicated activations do not."""
    cfg = tiny_config(num_heads=4, hidden_size=16)  # p=4-compatible heads
    ids = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
    peaks = {}
    for label, build in {
        "optimus_q2": lambda prm: OptimusModel(make_mesh(2), cfg, prm, stem_only=False),
        "megatron_p4": lambda prm: MegatronModel(Simulator.for_flat(p=4), cfg, prm),
    }.items():
        prm = init_transformer_params(cfg, seed=1)
        model = build(prm)
        model.forward(ids, labels)
        model.backward()
        sim = model.mesh.sim if hasattr(model, "mesh") else model.sim
        peaks[label] = sim.peak_memory()
    # same p = 4 devices: the 2D scheme's per-device peak must be smaller
    assert peaks["optimus_q2"] < peaks["megatron_p4"]


def test_comm_patterns_are_as_paper_describes(rng):
    """Optimus communicates via broadcast/reduce (SUMMA); Megatron via
    ring all-reduce — §2.4 vs §2.2."""
    cfg = tiny_config(num_heads=4, hidden_size=16)
    params = init_transformer_params(cfg, seed=1)
    mesh = make_mesh(2)
    mesh.sim.tracer.enabled = True
    om = OptimusModel(mesh, cfg, params, stem_only=True)
    om.stem_forward(4)
    o_kinds = {e.kind for e in mesh.sim.tracer.events}
    assert "broadcast" in o_kinds

    sim = Simulator.for_flat(p=4, trace=True)
    mm = MegatronModel(sim, cfg, params, stem_only=True)
    mm.stem_forward(4)
    # compute slices are traced too now; the *communication* is pure all-reduce
    m_kinds = {e.kind for e in sim.tracer.events if e.kind != "compute"}
    assert m_kinds == {"all_reduce"}


def test_backward_forward_comm_ratio():
    """Table 1/§4: backward communication ≈ 2× forward for Megatron but
    ≈ 3× for Optimus (communication rides inside SUMMA recompute)."""
    cfg = tiny_config(num_heads=4, hidden_size=32, num_layers=2)
    params = init_transformer_params(cfg, include_embedding=False)
    mesh = make_mesh(2)
    om = OptimusModel(mesh, cfg, params, stem_only=True)
    om.stem_forward(4)
    f = mesh.sim.device(0).weighted_comm_volume
    om.stem_backward()
    ratio_o = (mesh.sim.device(0).weighted_comm_volume - f) / f

    sim = Simulator.for_flat(p=4)
    mm = MegatronModel(sim, cfg, params, stem_only=True)
    mm.stem_forward(4)
    fm = sim.device(0).weighted_comm_volume
    mm.stem_backward()
    ratio_m = (sim.device(0).weighted_comm_volume - fm) / fm

    assert ratio_o == pytest.approx(3.0, rel=0.15)
    assert ratio_m == pytest.approx(2.0, rel=0.25)  # + checkpoint all-gather
