"""Training stack: optimizers (distributed vs serial), data, schedules,
trainer loop, gradient utilities."""

import math

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core import OptimusModel
from repro.mesh import assemble_blocked_2d
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from repro.training import (
    SGD,
    Adam,
    CharCorpus,
    SerialAdam,
    SerialSGD,
    Trainer,
    TrainingDivergedError,
    clip_grads,
    constant_lr,
    copy_task_batch,
    grad_norm,
    random_batch,
    warmup_cosine,
)
from tests.conftest import make_mesh


def _make_model(cfg, seed=1, q=2):
    params = init_transformer_params(cfg, seed=seed)
    return OptimusModel(make_mesh(q), cfg, params)


class TestDistVsSerialOptimizers:
    @pytest.mark.parametrize(
        "dist_cls,serial_cls,kw",
        [
            (SGD, SerialSGD, dict(lr=0.1)),
            (SGD, SerialSGD, dict(lr=0.1, momentum=0.9)),
            (SGD, SerialSGD, dict(lr=0.1, weight_decay=0.01)),
            (SGD, SerialSGD, dict(lr=0.1, momentum=0.9, weight_decay=0.01)),
            (Adam, SerialAdam, dict(lr=1e-2)),
            (Adam, SerialAdam, dict(lr=1e-2, weight_decay=0.01)),
        ],
    )
    def test_identical_updates(self, cfg, batch, dist_cls, serial_cls, kw):
        ids, labels = batch
        params_ref = init_transformer_params(cfg, seed=1)
        ref = ReferenceTransformer(cfg, params_ref)
        sopt = serial_cls(params_ref, **kw)

        params_d = init_transformer_params(cfg, seed=1)
        model = OptimusModel(make_mesh(2), cfg, params_d)
        dopt = dist_cls(model.parameters(), **kw)

        for _ in range(3):
            _, grads = ref.loss_and_grads(ids, labels)
            sopt.step(grads)
            dopt.zero_grad()
            model.forward(ids, labels)
            model.backward()
            dopt.step()

        w_d = assemble_blocked_2d(model.named_parameters()["layer0.mlp.w1"].data)
        np.testing.assert_allclose(w_d, params_ref["layer0.mlp.w1"], rtol=1e-9)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grads(self, cfg):
        model = _make_model(cfg)
        opt = SGD(model.parameters(), lr=0.1)
        opt.step()  # no grads anywhere: must be a no-op, not a crash

    def test_state_memory_charged(self, cfg):
        model = _make_model(cfg)
        sim = model.mesh.sim
        before = sim.device(0).memory.current
        Adam(model.parameters(), lr=1e-3, sim=sim)
        state_bytes = sim.device(0).memory.by_tag.get("optimizer_state", 0)
        assert state_bytes > 0
        assert sim.device(0).memory.current == before + state_bytes


class TestDecoupledWeightDecay:
    """Regression: weight decay used to be folded into the momentum-carried
    gradient (coupled L2), so stale decay terms compounded across steps."""

    def test_serial_decay_bypasses_momentum(self):
        p = np.array([1.0])
        opt = SerialSGD({"w": p}, lr=0.1, momentum=0.9, weight_decay=0.5)
        zero = {"w": np.array([0.0])}
        opt.step(zero)
        np.testing.assert_allclose(p, [0.95])
        # coupled L2 would give 0.8575 here: the first step's 0.5·θ decay
        # term survives in the momentum buffer and is re-applied at 0.9×
        opt.step(zero)
        np.testing.assert_allclose(p, [0.95**2])

    def test_dist_decay_bypasses_momentum(self, cfg, batch):
        ids, labels = batch
        model = _make_model(cfg)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=0.5)
        model.forward(ids, labels)
        model.backward()
        for p in model.parameters():
            p.grad = p.grad.map(np.zeros_like)  # isolate the decay path
        w0 = assemble_blocked_2d(model.named_parameters()["layer0.mlp.w1"].data).copy()
        opt.step()
        opt.step()
        w2 = assemble_blocked_2d(model.named_parameters()["layer0.mlp.w1"].data)
        np.testing.assert_allclose(w2, w0 * 0.95**2, rtol=1e-12)

    def test_flops_count_decay_and_momentum(self, cfg):
        model = _make_model(cfg)
        params = model.parameters()
        assert SGD(params, lr=0.1)._flops_per_element() == 2.0
        assert SGD(params, lr=0.1, weight_decay=0.01)._flops_per_element() == 3.0
        assert SGD(params, lr=0.1, momentum=0.9)._flops_per_element() == 4.0
        assert (
            SGD(params, lr=0.1, momentum=0.9, weight_decay=0.01)._flops_per_element()
            == 5.0
        )
        assert Adam(params, lr=1e-3)._flops_per_element() == 12.0
        assert Adam(params, lr=1e-3, weight_decay=0.01)._flops_per_element() == 14.0


class TestGradUtilities:
    def test_grad_norm_matches_serial(self, cfg, batch):
        ids, labels = batch
        params_ref = init_transformer_params(cfg, seed=1)
        ref = ReferenceTransformer(cfg, params_ref)
        _, grads = ref.loss_and_grads(ids, labels)
        expected = math.sqrt(sum(float(np.sum(np.asarray(g) ** 2)) for g in grads.values()))

        model = _make_model(cfg)
        model.forward(ids, labels)
        model.backward()
        assert grad_norm(model.parameters()) == pytest.approx(expected, rel=1e-9)

    def test_clip_grads(self, cfg, batch):
        ids, labels = batch
        model = _make_model(cfg)
        model.forward(ids, labels)
        model.backward()
        norm0 = grad_norm(model.parameters())
        clip_grads(model.parameters(), norm0 / 2)
        assert grad_norm(model.parameters()) == pytest.approx(norm0 / 2, rel=1e-9)

    def test_clip_noop_when_below(self, cfg, batch):
        ids, labels = batch
        model = _make_model(cfg)
        model.forward(ids, labels)
        model.backward()
        norm0 = grad_norm(model.parameters())
        returned = clip_grads(model.parameters(), norm0 * 10)
        assert returned == pytest.approx(norm0)
        assert grad_norm(model.parameters()) == pytest.approx(norm0)


class TestData:
    def test_random_batch_shapes_and_range(self, cfg):
        ids, labels = random_batch(cfg, 5, seed=1)
        assert ids.shape == labels.shape == (5, cfg.seq_len)
        assert ids.min() >= 0 and ids.max() < cfg.vocab_size

    def test_copy_task(self, cfg):
        ids, labels = copy_task_batch(cfg, 4)
        np.testing.assert_array_equal(ids, labels)

    def test_char_corpus_roundtrip(self):
        corpus = CharCorpus("hello world hello", vocab_size=12)
        assert corpus.decode(corpus.encode("hello")) == "hello"

    def test_char_corpus_batches_are_shifted(self):
        corpus = CharCorpus()
        ids, labels = corpus.batch(3, 10, seed=0)
        np.testing.assert_array_equal(ids[:, 1:], labels[:, :-1])

    def test_char_corpus_vocab_too_small(self):
        with pytest.raises(ValueError):
            CharCorpus("abcdefghij", vocab_size=3)

    def test_batches_iterator_varies(self):
        corpus = CharCorpus()
        it = corpus.batches(2, 8, seed=0)
        a, _ = next(it)
        b, _ = next(it)
        assert not np.array_equal(a, b)


class TestSchedules:
    def test_constant(self):
        assert constant_lr(0.3)(100) == 0.3

    def test_warmup_cosine_shape(self):
        fn = warmup_cosine(1.0, warmup_steps=10, total_steps=100, min_lr=0.1)
        assert fn(0) == pytest.approx(0.1)
        assert fn(9) == pytest.approx(1.0)
        assert fn(10) == pytest.approx(1.0)
        assert fn(1000) == pytest.approx(0.1)
        # monotone decay after warmup
        vals = [fn(s) for s in range(10, 100)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_warmup_cosine_validation(self):
        with pytest.raises(ValueError):
            warmup_cosine(1.0, warmup_steps=10, total_steps=5)


class TestTrainer:
    def test_loss_decreases_on_copy_task(self):
        cfg = tiny_config(num_layers=1)
        model = _make_model(cfg, q=2)
        opt = SGD(model.parameters(), lr=0.3)

        def batches():
            k = 0
            while True:
                yield copy_task_batch(cfg, 4, seed=k)
                k += 1

        trainer = Trainer(model, opt, batches())
        log = trainer.train_steps(12)
        assert log.losses[-1] < log.losses[0] * 0.9

    def test_lr_schedule_and_clipping_applied(self, cfg):
        model = _make_model(cfg)
        opt = SGD(model.parameters(), lr=1.0)

        def batches():
            while True:
                yield random_batch(cfg, 4, seed=0)

        trainer = Trainer(
            model, opt, batches(),
            lr_schedule=constant_lr(0.123), max_grad_norm=0.5,
        )
        log = trainer.train_steps(2)
        assert opt.lr == 0.123
        assert log.lrs == [0.123, 0.123]
        assert all(np.isfinite(n) for n in log.grad_norms)

    def test_logging(self, cfg, capsys):
        model = _make_model(cfg)
        opt = SGD(model.parameters(), lr=0.1)

        def batches():
            while True:
                yield random_batch(cfg, 4, seed=0)

        Trainer(model, opt, batches(), log_every=1).train_steps(1)
        assert "step" in capsys.readouterr().out


class _DivergingModel:
    """Returns one finite loss, then NaN forever (simulated blow-up)."""

    def __init__(self):
        self._calls = 0

    def forward(self, ids, labels) -> float:
        self._calls += 1
        return 1.25 if self._calls == 1 else float("nan")

    def backward(self) -> None:
        pass


class _NoOpOptimizer:
    params = ()
    lr = 0.1

    def zero_grad(self) -> None:
        pass

    def step(self) -> None:
        pass


class TestDivergenceGuard:
    def test_nan_loss_raises_with_step_and_last_finite_loss(self):
        def batches():
            while True:
                yield None, None

        trainer = Trainer(_DivergingModel(), _NoOpOptimizer(), batches())
        with pytest.raises(TrainingDivergedError) as ei:
            trainer.train_steps(5)
        err = ei.value
        assert err.step == 1
        assert math.isnan(err.loss)
        assert err.last_finite_loss == 1.25
        assert "step 1" in str(err) and "1.25" in str(err)
        # the guard fires before backward touches anything; the good step
        # was committed and logged
        assert trainer.log.losses == [1.25]

    def test_nan_on_first_step_reports_no_finite_loss(self):
        model = _DivergingModel()
        model._calls = 1  # skip the finite loss

        def batches():
            while True:
                yield None, None

        with pytest.raises(TrainingDivergedError, match="no finite loss"):
            Trainer(model, _NoOpOptimizer(), batches()).train_steps(1)
