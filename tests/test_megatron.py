"""Megatron baseline: layer-level and end-to-end equivalence, checkpointing
layouts, memory/comm behaviour."""

import numpy as np
import pytest

from repro.backend.shape_array import ShapeArray
from repro.comm.group import ProcessGroup
from repro.config import tiny_config
from repro.megatron import (
    ColumnParallelLinear,
    LayerNorm1D,
    MegatronModel,
    RowParallelLinear,
)
from repro.mesh.partition import (
    assemble_sharded_1d,
    distribute_replicated_1d,
    distribute_sharded_1d,
)
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer, functional as F
from repro.runtime import Simulator


def _group(p):
    sim = Simulator.for_flat(p=p)
    return ProcessGroup(sim, range(p), kind="megatron")


def _assemble(p):
    if p.data.layout.kind == "sharded_1d":
        return assemble_sharded_1d(p.grad)
    return p.grad.local(next(iter(p.grad.shards)))  # replicated


@pytest.mark.parametrize("p", [1, 2, 3])
class TestParallelLinears:
    def test_column_parallel(self, p, rng):
        g = _group(p)
        T, fin, fout = 8, 6, 6 * p
        w, bias = rng.normal(size=(fin, fout)), rng.normal(size=fout)
        x = rng.normal(size=(T, fin))
        dy = rng.normal(size=(T, fout))

        lin = ColumnParallelLinear(g, "col", w, bias)
        y = lin.forward(distribute_replicated_1d(g, x))
        np.testing.assert_allclose(assemble_sharded_1d(y), x @ w + bias, rtol=1e-12)

        dx = lin.backward(distribute_sharded_1d(g, dy, axis=1))
        np.testing.assert_allclose(dx.local(0), dy @ w.T, rtol=1e-12)
        np.testing.assert_allclose(assemble_sharded_1d(lin.weight.grad), x.T @ dy, rtol=1e-12)
        np.testing.assert_allclose(assemble_sharded_1d(lin.bias.grad), dy.sum(axis=0), rtol=1e-12)

    def test_row_parallel(self, p, rng):
        g = _group(p)
        T, fin, fout = 8, 6 * p, 4
        w, bias = rng.normal(size=(fin, fout)), rng.normal(size=fout)
        x = rng.normal(size=(T, fin))
        dy = rng.normal(size=(T, fout))

        lin = RowParallelLinear(g, "row", w, bias)
        y = lin.forward(distribute_sharded_1d(g, x, axis=1))
        np.testing.assert_allclose(y.local(0), x @ w + bias, rtol=1e-12)

        dx = lin.backward(distribute_replicated_1d(g, dy))
        np.testing.assert_allclose(assemble_sharded_1d(dx), dy @ w.T, rtol=1e-12)
        np.testing.assert_allclose(assemble_sharded_1d(lin.weight.grad), x.T @ dy, rtol=1e-12)
        # bias is replicated; every copy holds the full gradient
        np.testing.assert_allclose(lin.bias.grad.local(0), dy.sum(axis=0), rtol=1e-12)

    def test_column_then_row_is_one_matmul_pair(self, p, rng):
        """The Megatron MLP identity: no reshard between the two linears."""
        g = _group(p)
        h = 4
        w1, w2 = rng.normal(size=(h, 4 * h * p // p * p)), None
        w1 = rng.normal(size=(h, 4 * p))
        w2 = rng.normal(size=(4 * p, h))
        x = rng.normal(size=(6, h))
        col = ColumnParallelLinear(g, "c", w1)
        row = RowParallelLinear(g, "r", w2)
        y = row.forward(col.forward(distribute_replicated_1d(g, x)))
        np.testing.assert_allclose(y.local(0), x @ w1 @ w2, rtol=1e-12)


class TestLayerInputValidation:
    def test_column_needs_replicated(self, rng):
        g = _group(2)
        lin = ColumnParallelLinear(g, "c", rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            lin.forward(distribute_sharded_1d(g, rng.normal(size=(4, 4)), axis=1))

    def test_row_needs_column_sharded(self, rng):
        g = _group(2)
        lin = RowParallelLinear(g, "r", rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            lin.forward(distribute_replicated_1d(g, rng.normal(size=(4, 4))))


@pytest.mark.parametrize("p", [1, 2, 3])
def test_layernorm1d_matches_functional(p, rng):
    g = _group(p)
    x = rng.normal(size=(6, 8))
    gamma, beta = rng.normal(size=8), rng.normal(size=8)
    ln = LayerNorm1D(g, "ln", gamma, beta, eps=1e-5)
    out = ln.forward(distribute_replicated_1d(g, x))
    expected, x_hat, inv_std = F.layernorm_fwd(x, gamma, beta, 1e-5)
    np.testing.assert_allclose(out.local(0), expected, rtol=1e-12)
    dy = rng.normal(size=(6, 8))
    dx = ln.backward(distribute_replicated_1d(g, dy))
    ref_dx, ref_dg, _ = F.layernorm_bwd(dy, x_hat, inv_std, gamma)
    np.testing.assert_allclose(dx.local(p - 1), ref_dx, rtol=1e-10)
    np.testing.assert_allclose(ln.gamma.grad.local(0), ref_dg, rtol=1e-10)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "p,ckpt,layout",
        [(1, True, "distributed"), (2, False, "distributed"),
         (2, True, "distributed"), (3, True, "replicated"), (6, True, "distributed")],
    )
    def test_matches_reference(self, cfg, params, batch, p, ckpt, layout):
        ids, labels = batch
        ref = ReferenceTransformer(cfg, params)
        ref_loss = float(ref.forward(ids, labels))
        ref_grads = ref.backward()

        sim = Simulator.for_flat(p=p)
        model = MegatronModel(
            sim, cfg, params, checkpoint_activations=ckpt, checkpoint_layout=layout
        )
        loss = model.forward(ids, labels)
        assert loss == pytest.approx(ref_loss, abs=1e-10)
        model.backward()
        for prm in model.parameters():
            np.testing.assert_allclose(
                _assemble(prm), ref_grads[prm.name], rtol=1e-8, atol=1e-11,
                err_msg=prm.name,
            )

    def test_uneven_token_checkpointing(self, params, rng):
        """T = b·s not divisible by p still checkpoints distributed."""
        cfg = tiny_config(num_layers=2)
        b = 6  # T = 48, p = 5 → uneven 10/10/10/9/9 slices
        p = 5
        # heads 6 % 5 != 0 → use a head-compatible config instead
        cfg = tiny_config(num_layers=1, num_heads=5, hidden_size=20, vocab_size=50)
        ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        params = init_transformer_params(cfg, seed=2)
        ref_loss = float(ReferenceTransformer(cfg, params).forward(ids, labels))
        sim = Simulator.for_flat(p=p)
        model = MegatronModel(sim, cfg, params, checkpoint_activations=True)
        loss = model.forward(ids, labels)
        model.backward()
        assert loss == pytest.approx(ref_loss, abs=1e-10)

    def test_ckpt_layout_memory_ordering(self, cfg, params, batch):
        """distributed checkpoints ≤ replicated checkpoints in peak bytes."""
        ids, labels = batch
        peaks = {}
        for layout in ("distributed", "replicated"):
            sim = Simulator.for_flat(p=3)
            model = MegatronModel(sim, cfg, params, checkpoint_layout=layout)
            model.forward(ids, labels)
            model.backward()
            peaks[layout] = sim.peak_memory()
        assert peaks["distributed"] <= peaks["replicated"]

    def test_comm_is_all_reduce_dominated(self, cfg, params, batch):
        """Megatron's stem traffic is ring all-reduce (paper §2.2)."""
        ids, labels = batch
        sim = Simulator.for_flat(p=2, trace=True)
        model = MegatronModel(sim, cfg, params, stem_only=False)
        model.forward(ids, labels)
        kinds = {e.kind for e in sim.tracer.events}
        assert "all_reduce" in kinds
        assert "broadcast" not in kinds  # no SUMMA-style traffic

    def test_bad_checkpoint_layout(self, cfg, params):
        sim = Simulator.for_flat(p=2)
        with pytest.raises(ValueError):
            MegatronModel(sim, cfg, params, checkpoint_layout="weird")

    def test_stem_mode(self, cfg):
        params = init_transformer_params(cfg, include_embedding=False)
        sim = Simulator.for_flat(p=2)
        model = MegatronModel(sim, cfg, params, stem_only=True)
        out = model.stem_forward(4)
        assert out.global_shape == (4 * cfg.seq_len, cfg.hidden_size)
        model.stem_backward()
        assert sim.elapsed() > 0

    def test_dryrun_numeric_counter_parity(self, cfg):
        b = 4
        results = {}
        for backend in ("numpy", "shape"):
            sim = Simulator.for_flat(p=2, backend=backend)
            params = init_transformer_params(cfg, seed=1, backend=backend, dtype="float32")
            model = MegatronModel(sim, cfg, params)
            if backend == "numpy":
                rng = np.random.default_rng(0)
                ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
                labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
            else:
                ids = ShapeArray((b, cfg.seq_len), "int64")
                labels = ShapeArray((b, cfg.seq_len), "int64")
            model.forward(ids, labels)
            model.backward()
            d = sim.device(0)
            results[backend] = (
                d.flops_gemm, d.bytes_comm, d.weighted_comm_volume,
                d.num_collectives, sim.elapsed(), sim.peak_memory(),
            )
        assert results["numpy"] == pytest.approx(results["shape"])
