"""§3.2.3 option 2 — immediate per-layer parameter updates.

"We could update the parameters immediately after the backward pass of a
Transformer layer, and then reset the parameter gradient buffer."
"""

import numpy as np

from repro.core import BufferManager, OptimusModel
from repro.mesh.partition import assemble_any
from repro.nn import init_transformer_params
from repro.training import SGD, make_immediate_updater
from tests.conftest import make_mesh


def _train(cfg, ids, labels, immediate: bool, steps: int = 3):
    params = init_transformer_params(cfg, seed=1)
    mesh = make_mesh(2)
    buffers = BufferManager(mesh.sim, ranks=mesh.ranks, managed=True)
    model = OptimusModel(mesh, cfg, params, buffers=buffers)
    opt = SGD(model.parameters(), lr=0.1)
    hook = make_immediate_updater(opt, buffers) if immediate else None
    for _ in range(steps):
        opt.zero_grad()
        model.forward(ids, labels)
        model.backward(on_layer_backward=hook)
        opt.step()  # embedding / head / final-LN (layer params already done)
    return model, buffers


def test_immediate_updates_match_deferred(cfg, batch):
    """For SGD the per-layer update order is irrelevant: identical weights."""
    ids, labels = batch
    deferred, _ = _train(cfg, ids, labels, immediate=False)
    immediate, _ = _train(cfg, ids, labels, immediate=True)
    for (pd, pi) in zip(deferred.parameters(), immediate.parameters()):
        assert pd.name == pi.name
        np.testing.assert_allclose(
            assemble_any(pd.data), assemble_any(pi.data), rtol=1e-12,
            err_msg=pd.name,
        )


def test_immediate_updates_shrink_param_grad_buffer(cfg, batch):
    """The point of option 2: the gradient buffer holds one layer, not N."""
    ids, labels = batch
    _, deferred_buf = _train(cfg, ids, labels, immediate=False, steps=1)
    _, immediate_buf = _train(cfg, ids, labels, immediate=True, steps=1)
    rank = 0
    assert immediate_buf.capacity("param_grad", rank) < deferred_buf.capacity(
        "param_grad", rank
    )
    # with 2 layers plus the lm-head gradient, roughly half the arena
    assert immediate_buf.capacity("param_grad", rank) <= (
        0.75 * deferred_buf.capacity("param_grad", rank)
    )


def test_deferred_step_skips_already_updated_layers(cfg, batch):
    """After immediate layer updates, the trailing full step must not
    re-apply them (their gradients were cleared)."""
    ids, labels = batch
    params = init_transformer_params(cfg, seed=1)
    mesh = make_mesh(2)
    model = OptimusModel(mesh, cfg, params)
    opt = SGD(model.parameters(), lr=0.1)
    hook = make_immediate_updater(opt)
    model.forward(ids, labels)
    model.backward(on_layer_backward=hook)
    w_after_hooks = assemble_any(
        model.named_parameters()["layer0.mlp.w1"].data
    ).copy()
    opt.step()
    np.testing.assert_array_equal(
        assemble_any(model.named_parameters()["layer0.mlp.w1"].data),
        w_after_hooks,
    )
