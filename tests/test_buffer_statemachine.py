"""Stateful hypothesis test of the §3.2.3 buffer manager.

Drives random sequences of hold/release/reset/trim against a simple python
model of the intended semantics and checks the invariants that the memory
accounting of the whole reproduction rests on:

* managed-arena capacity equals the high-water mark of usage since the last
  trim, and is exactly what the device allocator was charged;
* unmanaged usage is charged 1:1;
* the device meter never goes negative and always balances at teardown.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.buffers import REGIONS, BufferManager
from repro.runtime import Simulator

_REGION = st.sampled_from([r for r in REGIONS if r != "backward"])
_BYTES = st.integers(1, 10_000)


class BufferMachine(RuleBasedStateMachine):
    @initialize(managed=st.booleans())
    def setup(self, managed):
        self.sim = Simulator.for_flat(p=1)
        self.managed = managed
        self.mgr = BufferManager(self.sim, managed=managed)
        self.usage = {r: 0 for r in REGIONS}
        self.capacity = {r: 0 for r in REGIONS}

    # ------------------------------------------------------------------
    @rule(region=_REGION, nbytes=_BYTES)
    def hold(self, region, nbytes):
        self.mgr.hold(region, 0, nbytes)
        self.usage[region] += nbytes
        self.capacity[region] = max(self.capacity[region], self.usage[region])

    @rule(region=_REGION, frac=st.floats(0.0, 1.0))
    def release_some(self, region, frac):
        amount = int(self.usage[region] * frac)
        if amount:
            self.mgr.release(region, 0, amount)
            self.usage[region] -= amount

    @rule(region=_REGION)
    def reset(self, region):
        self.mgr.reset_region(region)
        self.usage[region] = 0
        if not self.managed:
            self.capacity[region] = 0

    @rule(region=_REGION)
    def trim(self, region):
        self.mgr.trim_region(region)
        if self.managed:
            self.capacity[region] = max(self.usage[region], 0)
        if not self.managed:
            self.capacity[region] = self.usage[region]

    @rule(region=_REGION, nbytes=_BYTES)
    def over_release_rejected(self, region, nbytes):
        excess = self.usage[region] + nbytes
        with pytest.raises(ValueError):
            self.mgr.release(region, 0, excess)

    # ------------------------------------------------------------------
    @invariant()
    def usage_matches(self):
        for region in REGIONS:
            if region == "backward":
                continue
            assert self.mgr.usage(region, 0) == self.usage[region]

    @invariant()
    def charged_bytes_match_model(self):
        mem = self.sim.device(0).memory
        if self.managed:
            expected = sum(self.capacity.values())
        else:
            expected = sum(self.usage.values())
        assert mem.current == expected

    @invariant()
    def capacity_reported_correctly(self):
        for region in REGIONS:
            if region == "backward":
                continue
            if self.managed:
                assert self.mgr.capacity(region, 0) == self.capacity[region]
            else:
                assert self.mgr.capacity(region, 0) == self.usage[region]

    def teardown(self):
        self.mgr.release_all()
        assert self.sim.device(0).memory.current == 0


BufferMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestBufferMachine = BufferMachine.TestCase
