"""Pipeline parallelism: schedules, exact numerics, timing and memory
properties, and the LayerStack refactor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.shape_array import ShapeArray
from repro.config import ModelConfig, tiny_config
from repro.nn import init_transformer_params
from repro.pipeline import PipelineModel, bubble_fraction, gpipe_schedule, one_f_one_b_schedule
from repro.pipeline.schedule import max_in_flight
from repro.reference import ReferenceTransformer
from repro.reference.stack import LayerStack
from repro.runtime import Simulator
from repro.training import SerialSGD


@pytest.fixture
def deep_cfg():
    return tiny_config(num_layers=4)


@pytest.fixture
def deep_setup(deep_cfg, rng):
    params = init_transformer_params(deep_cfg, seed=1)
    ids = rng.integers(0, deep_cfg.vocab_size, size=(8, deep_cfg.seq_len))
    labels = rng.integers(0, deep_cfg.vocab_size, size=(8, deep_cfg.seq_len))
    return params, ids, labels


class TestSchedules:
    def test_gpipe_shape(self):
        sched = gpipe_schedule(3, 4)
        assert len(sched) == 3
        assert all(len(q) == 8 for q in sched)
        assert [op.phase for op in sched[0][:4]] == ["fwd"] * 4

    def test_1f1b_warmup_counts(self):
        sched = one_f_one_b_schedule(4, 8)
        for s, q in enumerate(sched):
            warmup = 0
            for op in q:
                if op.phase != "fwd":
                    break
                warmup += 1
            assert warmup == min(4 - s, 8), s

    def test_every_microbatch_scheduled_once(self):
        for maker in (gpipe_schedule, one_f_one_b_schedule):
            sched = maker(3, 5)
            for s, q in enumerate(sched):
                fwd = [op.micro_batch for op in q if op.phase == "fwd"]
                bwd = [op.micro_batch for op in q if op.phase == "bwd"]
                assert sorted(fwd) == list(range(5))
                assert sorted(bwd) == list(range(5))

    def test_in_flight_gpipe_vs_1f1b(self):
        """The schedules' defining difference: m vs ≤S live micro-batches."""
        S, m = 4, 16
        assert max_in_flight(gpipe_schedule(S, m), 0) == m
        assert max_in_flight(one_f_one_b_schedule(S, m), 0) == S

    def test_bubble_fraction(self):
        assert bubble_fraction(1, 8) == 0.0
        assert bubble_fraction(4, 4) == pytest.approx(3 / 7)
        assert bubble_fraction(4, 1000) < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            gpipe_schedule(0, 4)
        with pytest.raises(ValueError):
            bubble_fraction(2, 0)

    @given(st.integers(1, 5), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_1f1b_in_flight_bound_property(self, S, m):
        sched = one_f_one_b_schedule(S, m)
        for s in range(S):
            assert max_in_flight(sched, s) <= min(S - s, m) + 0
            assert max_in_flight(sched, s) == min(S - s, m)


class TestLayerStack:
    def test_matches_reference_model(self, deep_cfg, deep_setup):
        """The refactored stack reproduces the reference's layer math."""
        params, ids, labels = deep_setup
        ref = ReferenceTransformer(deep_cfg, params)
        ref_loss = float(ref.forward(ids, labels))
        ref_grads = ref.backward()

        # manual end-to-end using LayerStack for the middle
        from repro.reference import functional as F

        b = ids.shape[0]
        T = ids.size
        table = params["embedding.table"]
        x = np.asarray(table)[ids.reshape(-1)]
        stack = LayerStack(deep_cfg, params)
        y = stack.forward(x, b)
        out, x_hat, inv = F.layernorm_fwd(
            y, params["final_ln.gamma"], params["final_ln.beta"], deep_cfg.ln_eps
        )
        logits = out @ np.asarray(table).T
        loss_tok, probs = F.cross_entropy_fwd(logits, labels.reshape(-1))
        assert float(loss_tok.mean()) == pytest.approx(ref_loss, abs=1e-12)

        dlogits = F.cross_entropy_bwd(probs, labels.reshape(-1), np.full(T, 1.0 / T))
        d_out = dlogits @ np.asarray(table)
        dx, _, _ = F.layernorm_bwd(d_out, x_hat, inv, params["final_ln.gamma"])
        stack.backward(dx)
        for name, g in stack.grads.items():
            np.testing.assert_allclose(g, ref_grads[name], rtol=1e-8, atol=1e-11,
                                       err_msg=name)

    def test_partial_slice(self, deep_cfg, deep_setup, rng):
        params, _, _ = deep_setup
        stack = LayerStack(deep_cfg, params, layer_indices=[1, 2])
        x = rng.normal(size=(16, deep_cfg.hidden_size))
        y = stack.forward(x, 2)
        assert y.shape == x.shape
        dx = stack.backward(rng.normal(size=x.shape))
        assert set(stack.grads) == {
            f"layer{l}.{p}" for l in (1, 2)
            for p in ("ln1.gamma", "ln1.beta", "attn.wqkv", "attn.bqkv",
                      "attn.wo", "attn.bo", "ln2.gamma", "ln2.beta",
                      "mlp.w1", "mlp.b1", "mlp.w2", "mlp.b2")
        }

    def test_backward_requires_forward(self, deep_cfg, deep_setup, rng):
        params, _, _ = deep_setup
        stack = LayerStack(deep_cfg, params, layer_indices=[0])
        with pytest.raises(RuntimeError):
            stack.backward(rng.normal(size=(8, deep_cfg.hidden_size)))

    def test_cache_export_import(self, deep_cfg, deep_setup, rng):
        """Two interleaved micro-batches through one stack instance."""
        params, _, _ = deep_setup
        stack = LayerStack(deep_cfg, params, layer_indices=[0, 1])
        xa = rng.normal(size=(8, deep_cfg.hidden_size))
        xb = rng.normal(size=(8, deep_cfg.hidden_size))
        stack.forward(xa, 1)
        ca = stack.export_caches()
        stack.forward(xb, 1)
        cb = stack.export_caches()
        dy = rng.normal(size=xa.shape)
        stack.import_caches(ca)
        dxa = stack.backward(dy)
        stack.import_caches(cb)
        dxb = stack.backward(dy)
        assert not np.allclose(dxa, dxb)  # caches really were per-micro-batch


class TestPipelineModel:
    @pytest.mark.parametrize("schedule", ["gpipe", "1f1b"])
    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_exact_training_numerics(self, deep_cfg, deep_setup, schedule, m):
        params, ids, labels = deep_setup
        ref = ReferenceTransformer(deep_cfg, params)
        ref_loss = float(ref.forward(ids, labels))
        ref_grads = ref.backward()

        sim = Simulator.for_flat(p=2)
        pm = PipelineModel(sim, deep_cfg, params, num_micro_batches=m, schedule=schedule)
        loss = pm.forward_backward(ids, labels)
        assert loss == pytest.approx(ref_loss, abs=1e-10)
        for name, g in ref_grads.items():
            np.testing.assert_allclose(pm.grads[name], g, rtol=1e-8, atol=1e-11,
                                       err_msg=name)

    def test_four_stages(self, deep_cfg, deep_setup):
        params, ids, labels = deep_setup
        ref_loss = float(ReferenceTransformer(deep_cfg, params).forward(ids, labels))
        sim = Simulator.for_flat(p=4)
        pm = PipelineModel(sim, deep_cfg, params, num_micro_batches=4)
        assert pm.forward_backward(ids, labels) == pytest.approx(ref_loss, abs=1e-10)
        assert [len(l) for l in pm.stage_layers] == [1, 1, 1, 1]

    def test_uneven_layer_split(self, deep_setup):
        cfg = tiny_config(num_layers=5)
        params = init_transformer_params(cfg, seed=2)
        sim = Simulator.for_flat(p=2)
        pm = PipelineModel(sim, cfg, params, num_micro_batches=2)
        assert [len(l) for l in pm.stage_layers] == [3, 2]

    def test_training_matches_serial_sgd(self, deep_cfg, deep_setup):
        params_pipe, ids, labels = deep_setup
        params_ref = init_transformer_params(deep_cfg, seed=1)
        ref = ReferenceTransformer(deep_cfg, params_ref)
        opt_ref = SerialSGD(params_ref, lr=0.05)
        sim = Simulator.for_flat(p=2)
        pm = PipelineModel(sim, deep_cfg, params_pipe, num_micro_batches=4)
        opt_pipe = SerialSGD(params_pipe, lr=0.05)
        for _ in range(3):
            _, grads = ref.loss_and_grads(ids, labels)
            opt_ref.step(grads)
            pm.zero_grads()
            pm.forward_backward(ids, labels)
            opt_pipe.step(pm.grads)
        np.testing.assert_allclose(
            params_pipe["layer0.mlp.w1"], params_ref["layer0.mlp.w1"], rtol=1e-9
        )

    def test_1f1b_uses_less_memory_than_gpipe(self, deep_cfg, deep_setup):
        params, ids, labels = deep_setup
        peaks = {}
        for schedule in ("gpipe", "1f1b"):
            sim = Simulator.for_flat(p=2)
            pm = PipelineModel(sim, deep_cfg, params, num_micro_batches=4,
                               schedule=schedule)
            pm.forward_backward(ids, labels)
            peaks[schedule] = sim.device(0).memory.peak
        assert peaks["1f1b"] < peaks["gpipe"]

    def test_more_microbatches_shrink_the_bubble(self):
        """Compute-dominated dryrun: T(m) tracks work·(1 + (S−1)/m).

        A small vocabulary keeps the last stage's LM-head work from
        unbalancing the pipeline (with v=51200 the head roughly doubles the
        last stage's load and becomes the bottleneck — a real effect, but
        not the one under test here).
        """
        cfg = ModelConfig(vocab_size=512, hidden_size=1024, num_heads=16,
                          num_layers=4, seq_len=128)
        params = init_transformer_params(cfg, backend="shape", dtype="float32")
        times = {}
        for m in (1, 4, 16):
            sim = Simulator.for_flat(p=4, backend="shape")
            pm = PipelineModel(sim, cfg, params, num_micro_batches=m)
            ids = ShapeArray((16, cfg.seq_len), "int64")
            pm.forward_backward(ids, ids)
            times[m] = sim.elapsed()
        assert times[16] < times[4] < times[1]
        assert times[1] / times[16] > 1.5  # m=1 is mostly bubble for S=4

    def test_validation(self, deep_cfg, deep_setup):
        params, ids, labels = deep_setup
        sim = Simulator.for_flat(p=2)
        with pytest.raises(ValueError):
            PipelineModel(sim, deep_cfg, params, schedule="zigzag")
        with pytest.raises(ValueError):
            PipelineModel(sim, deep_cfg, params, num_stages=3)
        pm = PipelineModel(sim, deep_cfg, params, num_micro_batches=3)
        with pytest.raises(ValueError):
            pm.forward_backward(ids, labels)  # 8 % 3 != 0
        cfg1 = tiny_config(num_layers=1)
        with pytest.raises(ValueError):
            PipelineModel(
                Simulator.for_flat(p=2), cfg1,
                init_transformer_params(cfg1, seed=0), num_stages=2,
            )

    def test_dryrun_execution(self, deep_cfg):
        params = init_transformer_params(deep_cfg, backend="shape", dtype="float32")
        sim = Simulator.for_flat(p=2, backend="shape")
        pm = PipelineModel(sim, deep_cfg, params, num_micro_batches=2)
        ids = ShapeArray((8, deep_cfg.seq_len), "int64")
        loss = pm.forward_backward(ids, ids)
        assert loss.shape == ()
        assert sim.elapsed() > 0
        assert sim.tracer is not None
