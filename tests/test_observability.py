"""The observability stack: hierarchical spans, Perfetto export, the
communication matrix, the metrics registry, memory timelines, and the
``repro profile`` CLI.

The two load-bearing invariants, from the issue's acceptance criteria:

* tracing changes *nothing* — numeric results and every cost counter are
  identical with tracing on or off, under both backends;
* the exported artifacts reconcile — comm-matrix row sums equal the
  per-device byte counters, Perfetto timestamps are monotonic per track.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.comm.collectives import send_recv
from repro.config import tiny_config
from repro.core.model import OptimusModel
from repro.mesh.mesh import Mesh
from repro.nn.init import init_transformer_params
from repro.obs.comm_matrix import comm_matrix, row_sums
from repro.obs.comm_matrix import total as matrix_total
from repro.obs.metrics import MetricsRegistry
from repro.obs.perfetto import chrome_trace, write_chrome_trace
from repro.runtime.analysis import collective_stats, rank_activity
from repro.runtime.events import NULL_SPAN, Tracer
from repro.runtime.simulator import Simulator


def _traced_stem(backend: str, trace: bool = True, q: int = 2):
    """One forward+backward of a 2-layer Optimus stem."""
    cfg = tiny_config(num_layers=2)
    params = init_transformer_params(
        cfg, backend=backend, include_embedding=False,
        **({"seed": 1} if backend == "numpy" else {}),
    )
    sim = Simulator.for_mesh(q=q, backend=backend, trace=trace)
    model = OptimusModel(Mesh(sim, q), cfg, params, stem_only=True)
    model.stem_forward(4)
    model.stem_backward()
    return sim


class TestSpans:
    def test_spans_nest_and_close(self):
        sim = _traced_stem("numpy")
        tr = sim.tracer
        assert tr.open_span_count == 0  # everything closed
        assert tr.spans, "no spans recorded"
        # the stem produces layer > summa op > summa_step nesting
        assert {s.category for s in tr.spans} >= {"layer", "op", "summa"}
        assert tr.max_depth() >= 3
        # parent links resolve and parents strictly contain children
        by_sid = {}
        for s in tr.spans:
            by_sid.setdefault(s.sid, {})[s.rank] = s
        for s in tr.spans:
            if s.parent is None:
                continue
            parent = by_sid[s.parent][s.rank]
            assert parent.depth == s.depth - 1
            assert parent.t_start <= s.t_start
            assert parent.t_end >= s.t_end

    def test_backends_record_identical_span_timings(self):
        """Full model forward+backward: both backends trace the same spans
        at the same simulated clocks (float32 on both sides — the stem
        helper's synthetic input is float64 numeric / float32 dryrun, so
        the full model with a shared dtype is the apples-to-apples case)."""
        from repro.backend.shape_array import ShapeArray

        cfg = tiny_config(num_layers=2)
        tracers = {}
        for backend in ("numpy", "shape"):
            sim = Simulator.for_mesh(q=2, backend=backend, trace=True)
            params = init_transformer_params(cfg, seed=1, backend=backend,
                                             dtype="float32")
            model = OptimusModel(Mesh(sim, 2), cfg, params,
                                 checkpoint_activations=True)
            if backend == "numpy":
                rng = np.random.default_rng(0)
                ids = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
                labels = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
            else:
                ids = ShapeArray((4, cfg.seq_len), "int64")
                labels = ShapeArray((4, cfg.seq_len), "int64")
            model.forward(ids, labels)
            model.backward()
            tracers[backend] = sim.tracer
        numeric, dryrun = tracers["numpy"], tracers["shape"]
        assert len(numeric.spans) == len(dryrun.spans)
        for a, b in zip(numeric.spans, dryrun.spans):
            assert (a.name, a.category, a.rank, a.depth, a.sid) == (
                b.name, b.category, b.rank, b.depth, b.sid
            )
            assert a.t_start == pytest.approx(b.t_start, rel=1e-12)
            assert a.t_end == pytest.approx(b.t_end, rel=1e-12)

    def test_span_records_per_rank_clocks(self):
        sim = _traced_stem("numpy")
        for s in sim.tracer.spans:
            assert s.t_end >= s.t_start >= 0.0

    def test_misnested_spans_raise(self):
        tr = Tracer(enabled=True)
        outer = tr.span("outer", [0]).__enter__()
        inner = tr.span("inner", [0]).__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        outer.__exit__(None, None, None)
        assert tr.open_span_count == 0

    def test_disabled_tracer_returns_null_span(self):
        tr = Tracer(enabled=False)
        assert tr.span("anything", [0, 1]) is NULL_SPAN
        with tr.span("anything", [0, 1]):
            pass
        assert tr.spans == [] and tr.events == []

    def test_spans_of_filters(self):
        sim = _traced_stem("numpy")
        layers = sim.tracer.spans_of(category="layer")
        assert layers and all(s.category == "layer" for s in layers)
        r0 = sim.tracer.spans_of(category="layer", rank=0)
        assert r0 and all(s.rank == 0 for s in r0)


class TestTracingIsFree:
    def test_tracing_changes_no_numbers(self):
        """Acceptance criterion: every counter identical with tracing on/off."""
        for backend in ("numpy", "shape"):
            on = _traced_stem(backend, trace=True)
            off = _traced_stem(backend, trace=False)
            assert on.elapsed() == off.elapsed()
            assert on.total_flops() == off.total_flops()
            assert on.total_bytes_comm() == off.total_bytes_comm()
            assert on.peak_memory() == off.peak_memory()
            for d_on, d_off in zip(on.devices, off.devices):
                assert d_on.clock == d_off.clock
                assert d_on.compute_time == d_off.compute_time
                assert d_on.comm_time == d_off.comm_time
                assert d_on.weighted_comm_volume == d_off.weighted_comm_volume
            assert off.tracer.events == [] and off.tracer.spans == []

    def test_tracing_changes_no_loss(self):
        cfg = tiny_config(num_layers=2)
        params = init_transformer_params(cfg, seed=1)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
        losses = []
        for trace in (False, True):
            prm = init_transformer_params(cfg, seed=1)
            sim = Simulator.for_mesh(q=2, trace=trace)
            model = OptimusModel(Mesh(sim, 2), cfg, prm)
            losses.append(model.forward(ids, labels))
        assert losses[0] == losses[1]


class TestResetTime:
    def test_reset_time_clears_trace_by_default(self):
        sim = _traced_stem("shape")
        assert sim.tracer.events and sim.tracer.spans
        sim.reset_time()
        assert sim.tracer.events == [] and sim.tracer.spans == []
        assert sim.elapsed() == 0.0

    def test_reset_time_keep_trace(self):
        sim = _traced_stem("shape")
        n_events, n_spans = len(sim.tracer.events), len(sim.tracer.spans)
        sim.reset_time(keep_trace=True)
        assert len(sim.tracer.events) == n_events
        assert len(sim.tracer.spans) == n_spans
        assert sim.elapsed() == 0.0


class TestCommMatrix:
    def test_row_sums_match_device_counters(self):
        sim = _traced_stem("shape")
        mat = comm_matrix(sim)
        for r, s in enumerate(row_sums(mat)):
            assert s == pytest.approx(sim.device(r).bytes_comm, rel=1e-12)
        assert matrix_total(mat) == pytest.approx(sim.total_bytes_comm(), rel=1e-12)

    def test_weighted_matrix_matches_weighted_counters(self):
        sim = _traced_stem("shape")
        mat = comm_matrix(sim, weighted=True)
        for r, s in enumerate(row_sums(mat)):
            assert s == pytest.approx(
                sim.device(r).weighted_comm_volume, rel=1e-12
            )

    def test_matrix_is_symmetric(self):
        sim = _traced_stem("shape")
        mat = comm_matrix(sim)
        n = len(mat)
        for i in range(n):
            assert mat[i][i] == 0.0
            for j in range(n):
                assert mat[i][j] == pytest.approx(mat[j][i], rel=1e-12)

    def test_row_sums_reconcile_after_scatter_gather(self):
        """Regression: scatter/gather used to charge counters and trace
        events inconsistently, breaking row-sum reconciliation."""
        from repro.comm import ProcessGroup, collectives as coll

        sim = Simulator.for_flat(p=4, trace=True)
        g = ProcessGroup(sim, range(4), kind="test")
        rng = np.random.default_rng(0)
        full = rng.normal(size=(8, 4))
        pieces = coll.scatter(g, full, root=1, axis=0)
        coll.gather(g, pieces, root=2, axis=0)
        coll.broadcast(g, full, root=0)
        mat = comm_matrix(sim)
        for r, s in enumerate(row_sums(mat)):
            assert s == pytest.approx(sim.device(r).bytes_comm, rel=1e-12)
        assert matrix_total(mat) == pytest.approx(sim.total_bytes_comm(), rel=1e-12)

    def test_p2p_charged_to_both_endpoints(self):
        sim = Simulator.for_flat(p=4, trace=True)
        x = np.ones((64, 64))
        send_recv(sim, 0, 2, x)
        mat = comm_matrix(sim)
        assert mat[0][2] == x.nbytes and mat[2][0] == x.nbytes
        assert matrix_total(mat) == pytest.approx(sim.total_bytes_comm())


class TestPerfetto:
    def test_trace_round_trips_and_is_monotonic(self, tmp_path):
        sim = _traced_stem("shape")
        path = tmp_path / "trace.json"
        write_chrome_trace(sim, str(path))
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert events
        # one track (pid) per rank, plus monotonic non-negative timestamps
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == set(range(sim.num_ranks))
        per_track = {}
        for e in events:
            if e["ph"] not in ("X", "C"):
                continue
            assert e["ts"] >= 0.0
            assert e.get("dur", 0.0) >= 0.0
            per_track.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        for track, stamps in per_track.items():
            assert stamps == sorted(stamps), track

    def test_span_events_carry_nesting_metadata(self):
        sim = _traced_stem("shape")
        trace = chrome_trace(sim)
        span_events = [e for e in trace["traceEvents"]
                       if e["ph"] == "X" and e["cat"] in ("layer", "op", "summa")]
        assert span_events
        assert all("sid" in e["args"] for e in span_events)

    def test_p2p_emits_flow_arrows(self):
        sim = Simulator.for_flat(p=2, trace=True)
        send_recv(sim, 0, 1, np.ones(128))
        events = chrome_trace(sim)["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"s", "f"} <= phases
        start = next(e for e in events if e["ph"] == "s")
        finish = next(e for e in events if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert (start["pid"], finish["pid"]) == (0, 1)
        # both endpoints get a copy-engine slice
        copies = [e for e in events if e["ph"] == "X" and e["cat"] == "p2p"]
        assert {e["pid"] for e in copies} == {0, 1}

    def test_memory_counters_exported(self):
        cfg = tiny_config(num_layers=1)
        sim = Simulator.for_mesh(q=2, backend="shape", trace=True)
        sim.enable_memory_timeline()
        params = init_transformer_params(cfg, backend="shape", include_embedding=False)
        model = OptimusModel(Mesh(sim, 2), cfg, params, stem_only=True)
        model.stem_forward(4)
        counters = [e for e in chrome_trace(sim)["traceEvents"] if e["ph"] == "C"]
        assert counters
        assert any(e["name"] == "memory" for e in counters)
        assert any(e["name"].startswith("memory:") for e in counters)


class TestAnalysis:
    def test_collective_stats_cover_p2p(self):
        sim = Simulator.for_flat(p=4, trace=True)
        x = np.ones((32, 32))
        send_recv(sim, 0, 1, x)
        send_recv(sim, 1, 2, x)
        stats = collective_stats(sim.tracer)
        assert stats["p2p"].count == 2
        assert stats["p2p"].total_bytes == 2 * x.nbytes
        # both endpoints are charged, like the device counters
        assert stats["p2p"].total_bytes_charged == 4 * x.nbytes
        assert stats["p2p"].total_bytes_charged == sim.total_bytes_comm()

    def test_collective_stats_charged_total_reconciles(self):
        sim = _traced_stem("shape")
        stats = collective_stats(sim.tracer)
        assert "compute" not in stats
        charged = sum(s.total_bytes_charged for s in stats.values())
        assert charged == pytest.approx(sim.total_bytes_comm(), rel=1e-12)

    def test_rank_activity_from_trace(self):
        sim = _traced_stem("shape")
        acts = rank_activity(sim.tracer, sim.num_ranks, elapsed=sim.elapsed())
        assert len(acts) == sim.num_ranks
        for a in acts:
            assert 0.0 < a.busy_time <= a.total_time + 1e-12
            assert 0.0 <= a.busy_fraction <= 1.0
            assert a.idle_time == pytest.approx(a.total_time - a.busy_time)

    def test_rank_activity_p2p_busies_receiver_only(self):
        sim = Simulator.for_flat(p=2, trace=True)
        send_recv(sim, 0, 1, np.ones((256, 256)))
        acts = rank_activity(sim.tracer, 2)
        assert acts[1].busy_time > 0.0  # receiver waits for the transfer
        assert acts[0].busy_time == 0.0  # sender's compute stream not stalled


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc()
        reg.counter("steps").inc(2)
        assert reg.counter("steps").value == 3
        with pytest.raises(ValueError):
            reg.counter("steps").inc(-1)
        reg.gauge("frac", rank=0).set(0.5)
        assert reg.gauge("frac", rank=0).value == 0.5
        h = reg.histogram("loss")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4 and h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(0) == 1.0 and h.percentile(100) == 4.0

    def test_labels_key_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("c", scheme="optimus", p=4)
        b = reg.counter("c", p=4, scheme="optimus")  # order-insensitive
        assert a is b
        assert reg.counter("c", p=16, scheme="optimus") is not a
        assert len(reg.find("c")) == 2

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("n", scheme="optimus").inc(5)
        reg.histogram("t").observe(1.0)
        snap = reg.snapshot()
        assert snap["n{scheme=optimus}"] == 5
        assert snap["t"]["count"] == 1
        assert "n{scheme=optimus}" in reg.render()

    def test_buffer_manager_publishes_capacity(self):
        sim = _traced_stem("shape")
        gauges = sim.metrics.find("buffer_capacity_bytes")
        assert gauges
        assert all(g.value > 0 for g in gauges)


class TestMemoryTimeline:
    def test_timeline_samples_on_alloc_and_free(self):
        sim = Simulator.for_mesh(q=2, backend="shape")
        sim.enable_memory_timeline()
        meter = sim.device(0).memory
        meter.alloc(100, tag="a")
        meter.alloc(50, tag="b")
        meter.free(100, tag="a")
        tl = sim.memory_timeline()[0]
        assert [s.total for s in tl] == [100, 150, 50]
        assert [s.tag for s in tl] == ["a", "b", "a"]
        assert tl[-1].tag_bytes == 0

    def test_timeline_disabled_by_default(self):
        sim = _traced_stem("shape")
        assert all(not tl for tl in sim.memory_timeline().values())

    def test_timeline_stamps_simulated_time(self):
        sim = Simulator.for_mesh(q=2, backend="shape", trace=True)
        sim.enable_memory_timeline()
        sim.device(0).compute(1e12)
        sim.device(0).memory.alloc(10, tag="late")
        (sample,) = sim.memory_timeline()[0]
        assert sample.t == sim.device(0).clock > 0.0


class TestTrainerMetrics:
    def test_trainer_publishes_step_metrics(self):
        from repro.training.data import random_batch
        from repro.training.optim import SGD
        from repro.training.trainer import Trainer

        cfg = tiny_config(num_layers=1)
        sim = Simulator.for_mesh(q=2, trace=True)
        model = OptimusModel(Mesh(sim, 2), cfg, init_transformer_params(cfg, seed=1))
        opt = SGD(model.parameters(), lr=0.1, sim=sim)
        batches = (random_batch(cfg, 4, seed=i) for i in range(10))
        log = Trainer(model, opt, batches).train_steps(3)

        assert sim.metrics.counter("train/steps").value == 3
        assert sim.metrics.histogram("train/loss").count == 3
        assert sim.metrics.histogram("train/step_time").count == 3
        assert 0.0 <= sim.metrics.gauge("train/comm_fraction").value <= 1.0
        assert len(log.step_times) == 3 and all(t > 0 for t in log.step_times)
        assert len(log.comm_fractions) == 3
        # each step produced a step-span over all ranks
        steps = sim.tracer.spans_of(category="step")
        assert len(steps) == 3 * sim.num_ranks
        assert all(s.depth == 0 for s in steps)


class TestProfileCLI:
    def test_profile_table1_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        assert main(["profile", "table1", "--trace-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "reconciled" in printed
        assert "MISMATCH" not in printed
        trace = json.loads(out.read_text())
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert len(pids) >= 4  # one track per rank of the 2x2 mesh

    def test_profile_train_with_mem_timeline(self, capsys):
        from repro.cli import main

        assert main(["profile", "train", "--mem-timeline"]) == 0
        printed = capsys.readouterr().out
        assert "train/loss" in printed
        assert "memory timeline:" in printed

    def test_profile_megatron_scheme(self, capsys):
        from repro.cli import main

        assert main(["profile", "tiny", "--scheme", "megatron"]) == 0
        assert "[megatron]" in capsys.readouterr().out

    def test_profile_rejects_unknown_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["profile", "nope"])

    def test_profile_serve_exercises_request_spans(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "serve.json"
        assert main(["profile", "serve", "--trace-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "reconciled" in printed
        assert "MISMATCH" not in printed
        trace = json.loads(out.read_text())
        req = [e for e in trace["traceEvents"] if e.get("cat") == "request"]
        assert any(e["ph"] == "X" for e in req)
        assert any(e["ph"] in ("s", "t", "f") for e in req)
