"""The α–β collective cost model: formulas, hierarchy, monotonicity."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.cost import (
    RING_EFFICIENCY_INTER,
    RING_EFFICIENCY_INTRA,
    TREE_EFFICIENCY,
    GroupCommModel,
    _log2_stages,
)
from repro.hardware import (
    ClusterTopology,
    bunched_arrangement,
    frontera_rtx,
    linear_arrangement,
    naive_arrangement,
)


def _model(ranks, num_nodes=4, arrangement=None, siblings=None):
    cluster = frontera_rtx(num_nodes)
    topo = ClusterTopology(cluster)
    arr = arrangement or linear_arrangement(cluster)
    return GroupCommModel.build(topo, arr, ranks, siblings=siblings)


class TestEquationForms:
    def test_eq4_intra_node_broadcast(self):
        """log₂(g)·(α + βB/eff) for an intra-node group (Eq. 4)."""
        m = _model([0, 1, 2, 3], num_nodes=1)
        B = 1e6
        link = frontera_rtx(1).intra_link
        expected = 2 * (link.alpha + link.beta * B / TREE_EFFICIENCY)
        assert m.broadcast_time(B) == pytest.approx(expected)
        assert m.reduce_time(B) == m.broadcast_time(B)

    def test_eq5_ring_all_reduce(self):
        """2(g−1)·(α + βB/(g·eff)) (Eq. 5)."""
        m = _model([0, 1, 2, 3], num_nodes=1)
        B = 1e6
        link = frontera_rtx(1).intra_link
        expected = 2 * 3 * (link.alpha + link.beta * B / (4 * RING_EFFICIENCY_INTRA))
        assert m.all_reduce_time(B) == pytest.approx(expected)

    def test_single_rank_is_free(self):
        m = _model([0], num_nodes=1)
        assert m.broadcast_time(1e9) == 0.0
        assert m.all_reduce_time(1e9) == 0.0
        assert m.all_gather_time(1e9) == 0.0

    def test_hierarchical_tree_stages(self):
        """Multi-node tree: log₂(nodes) inter stages + log₂(r) intra stages."""
        cluster = frontera_rtx(2)
        topo = ClusterTopology(cluster)
        arr = linear_arrangement(cluster)
        m = GroupCommModel.build(topo, arr, list(range(8)))
        B = 1e6
        expected = _log2_stages(2) * (
            cluster.inter_link.alpha
            + cluster.inter_link.beta * m.crowding * B / TREE_EFFICIENCY
        ) + _log2_stages(4) * (
            cluster.intra_link.alpha + cluster.intra_link.beta * B / TREE_EFFICIENCY
        )
        assert m.broadcast_time(B) == pytest.approx(expected)

    def test_weighted_volumes_are_paper_units(self):
        m = _model([0, 1, 2, 3], num_nodes=1)
        assert m.broadcast_weighted_volume(100) == pytest.approx(math.log2(4) * 100)
        assert m.all_reduce_weighted_volume(100) == pytest.approx(2 * 3 / 4 * 100)
        assert m.all_gather_weighted_volume(100) == pytest.approx(3 / 4 * 100)


class TestContention:
    def test_crowding_multiplies_inter_bandwidth_term(self):
        cluster = frontera_rtx(4)
        topo = ClusterTopology(cluster)
        arr = naive_arrangement(cluster, 4)
        cols = [[i * 4 + j for i in range(4)] for j in range(4)]
        alone = GroupCommModel.build(topo, arr, cols[0])
        crowded = GroupCommModel.build(topo, arr, cols[0], siblings=cols)
        assert crowded.crowding == 4
        assert alone.crowding == 1
        assert crowded.broadcast_time(1e7) > alone.broadcast_time(1e7)

    def test_bunched_cheaper_than_naive_for_columns(self):
        cluster = frontera_rtx(4)
        topo = ClusterTopology(cluster)
        cols = [[i * 4 + j for i in range(4)] for j in range(4)]
        mn = GroupCommModel.build(topo, naive_arrangement(cluster, 4), cols[0], siblings=cols)
        mb = GroupCommModel.build(topo, bunched_arrangement(cluster, 4), cols[0], siblings=cols)
        assert mb.broadcast_time(1e7) < mn.broadcast_time(1e7)
        assert mb.all_reduce_time(1e7) < mn.all_reduce_time(1e7)

    def test_intra_group_ignores_crowding(self):
        cluster = frontera_rtx(4)
        topo = ClusterTopology(cluster)
        arr = naive_arrangement(cluster, 4)
        rows = [[i * 4 + j for j in range(4)] for i in range(4)]
        m = GroupCommModel.build(topo, arr, rows[0], siblings=rows)
        assert m.profile.is_intra_node
        assert m.crowding == 1


class TestInterVsIntra:
    def test_inter_node_costs_more(self):
        intra = _model([0, 1, 2, 3], num_nodes=2)  # one node
        inter = _model([0, 4], num_nodes=2)  # two nodes
        B = 1e7
        assert inter.broadcast_time(B) > intra.broadcast_time(B) / 2  # sanity
        assert inter.all_reduce_time(B) / 1 > 0
        # per-stage inter β with the lower ring efficiency dominates
        assert RING_EFFICIENCY_INTER < RING_EFFICIENCY_INTRA


@given(st.integers(2, 16), st.floats(1.0, 1e9))
@settings(max_examples=60, deadline=None)
def test_costs_monotone_in_bytes_property(g, B):
    m = _model(list(range(min(g, 16))), num_nodes=4)
    for fn in (m.broadcast_time, m.all_reduce_time, m.all_gather_time):
        assert fn(2 * B) > fn(B) > 0


@given(st.integers(1, 12))
@settings(max_examples=30, deadline=None)
def test_log2_stages_property(n):
    s = _log2_stages(n)
    assert s >= 0
    if n > 1:
        assert s == pytest.approx(math.log2(n))
    else:
        assert s == 0.0
