"""Serving engine tests: traffic, KV cache, scheduler, decode equivalence,
report determinism and the ledger/dash/CLI integration."""

import json
import math

import numpy as np
import pytest

from repro.config import tiny_config
from repro.nn.init import init_transformer_params
from repro.obs.ledger import RunLedger, RunRecord, compact
from repro.reference.functional import gelu, layernorm_fwd
from repro.runtime.simulator import Simulator
from repro.serving.engine import make_engine
from repro.serving.kvcache import (
    KV_MEMORY_TAG,
    KVBlockPool,
    KVShardGroup,
    ShardedKVCache,
)
from repro.serving.report import (
    compare_reports,
    percentile,
    run_ab,
    run_serve,
)
from repro.serving.scheduler import ContinuousBatchingScheduler, ServingOptions
from repro.serving.traffic import Request, TrafficGenerator

CFG = tiny_config(num_heads=4)
PARAMS = init_transformer_params(CFG, seed=1)


def _requests(specs):
    """specs: iterable of (arrival, prompt_tuple, max_new)."""
    return [
        Request(rid=i, arrival=a, prompt=tuple(p), max_new=m)
        for i, (a, p, m) in enumerate(specs)
    ]


def _flat_cache(sim, slots=4, block_size=4, blocks=16, layers=1, heads=2, d=3):
    groups = [KVShardGroup(gid=0, ranks=tuple(sim.ranks), slots=tuple(range(slots)))]
    return ShardedKVCache(
        sim,
        groups,
        num_layers=layers,
        heads_loc=heads,
        head_dim=d,
        block_size=block_size,
        blocks_per_group=blocks,
    )


# ----------------------------------------------------------------------
# traffic
# ----------------------------------------------------------------------
class TestTraffic:
    def test_same_seed_is_identical(self):
        a = TrafficGenerator(7, CFG.vocab_size).generate()
        b = TrafficGenerator(7, CFG.vocab_size).generate()
        assert a == b

    def test_different_seeds_differ(self):
        a = TrafficGenerator(7, CFG.vocab_size).generate()
        b = TrafficGenerator(8, CFG.vocab_size).generate()
        assert a != b

    def test_sorted_by_arrival(self):
        reqs = TrafficGenerator(0, CFG.vocab_size, num_requests=32).generate()
        assert [r.arrival for r in reqs] == sorted(r.arrival for r in reqs)

    def test_bursty_groups_arrivals(self):
        reqs = TrafficGenerator(
            0, CFG.vocab_size, arrival="bursty", burst_size=4, num_requests=12
        ).generate()
        arrivals = [r.arrival for r in reqs]
        for i in range(0, 12, 4):
            assert len(set(arrivals[i : i + 4])) == 1  # whole burst lands together
        assert len(set(arrivals)) == 3

    def test_tokens_in_vocab_and_kv_positions(self):
        for r in TrafficGenerator(3, CFG.vocab_size).generate():
            assert all(0 <= t < CFG.vocab_size for t in r.prompt)
            assert r.kv_positions == r.prompt_len + r.max_new - 1

    def test_rejects_bad_profile(self):
        with pytest.raises(ValueError):
            TrafficGenerator(0, 48, arrival="adversarial")


# ----------------------------------------------------------------------
# KV block pool + sharded cache
# ----------------------------------------------------------------------
class TestKVCache:
    def test_pool_exhaustion_raises(self):
        pool = KVBlockPool(0, 4)
        pool.allocate(3)
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.allocate(2)

    def test_pool_lowest_id_first_and_peak(self):
        pool = KVBlockPool(0, 4)
        ids = pool.allocate(2)
        assert ids == [0, 1]
        pool.release([0])
        assert pool.allocate(1) == [0]  # reuses the lowest freed id
        assert pool.peak_in_use == 2

    def test_pool_double_free_raises(self):
        pool = KVBlockPool(0, 2)
        ids = pool.allocate(1)
        pool.release(ids)
        with pytest.raises(RuntimeError, match="double free"):
            pool.release(ids)

    def test_reserve_charges_and_free_refunds_device_memory(self):
        sim = Simulator.for_flat(2)
        cache = _flat_cache(sim, block_size=4, blocks=8)
        before = [sim.device(r).memory.current for r in sim.ranks]
        cache.reserve(0, kv_positions=10)  # 3 blocks of 4
        per_block = cache.bytes_per_rank_block()
        for r in sim.ranks:
            assert sim.device(r).memory.current == before[r] + 3 * per_block
        cache.free(0)
        for r in sim.ranks:
            assert sim.device(r).memory.current == before[r]
        assert cache.pools[0].in_use == 0

    def test_write_gather_round_trip_across_blocks(self):
        sim = Simulator.for_flat(1)
        cache = _flat_cache(sim, block_size=3, blocks=8, heads=2, d=3)
        cache.reserve(0, kv_positions=7)  # spans 3 blocks
        rng = np.random.default_rng(0)
        ks = rng.normal(size=(7, 2, 3))
        vs = rng.normal(size=(7, 2, 3))
        for pos in range(7):
            cache.write(0, 0, 0, pos, ks[pos], vs[pos])
            cache.commit(0)
        k_cat, v_cat = cache.gather(0, 0, 0, upto=7)
        assert k_cat.shape == (2, 7, 3)
        np.testing.assert_array_equal(k_cat, ks.transpose(1, 0, 2))
        np.testing.assert_array_equal(v_cat, vs.transpose(1, 0, 2))

    def test_equal_per_device_bytes_across_schemes(self):
        """The report's blocks scaling keeps per-device KV bytes equal."""
        q, blocks, bs = 2, 12, 8
        opt = make_engine("optimus", CFG, PARAMS, q, 8, bs, blocks)
        meg = make_engine("megatron", CFG, PARAMS, q, 8, bs, blocks * q)
        assert opt.cache.per_device_capacity_bytes() == meg.cache.per_device_capacity_bytes()
        # and the shard itself is O(bsh/p): q× thinner heads on q²/q× ranks
        assert meg.cache.bytes_per_rank_block() * q == opt.cache.bytes_per_rank_block()


# ----------------------------------------------------------------------
# scheduler
# ----------------------------------------------------------------------
class TestScheduler:
    def _sched(self, slots=2, block_size=4, blocks=4):
        sim = Simulator.for_flat(1)
        cache = _flat_cache(sim, slots=slots, block_size=block_size, blocks=blocks)
        return ContinuousBatchingScheduler(cache)

    def test_fcfs_admission_order_is_arrival_order(self):
        sched = self._sched(slots=2, blocks=16)
        reqs = _requests([(0.3, (1, 2), 2), (0.1, (3,), 1), (0.2, (4,), 1)])
        sched.load(reqs)
        admitted = sched.admit(now=1.0)
        assert [s.request.rid for s in admitted] == [1, 2]  # arrival order
        assert sched.pending == 1  # no free slot for rid 0 yet
        sched.finish(admitted[0].slot, now=1.5)
        again = sched.admit(now=1.5)
        assert [s.request.rid for s in again] == [0]  # head never skipped

    def test_capacity_never_exceeded_and_hol_counted(self):
        sched = self._sched(slots=1, blocks=16)
        sched.load(_requests([(0.0, (1,), 1), (0.0, (2,), 1)]))
        sched.admit(now=0.0)
        assert len(sched.active) == 1
        assert sched.stats["hol_blocked_steps"] == 1

    def test_block_shortage_blocks_head_not_later_requests(self):
        # 4 blocks of 4 positions; head needs 3 blocks, only 2 free
        sched = self._sched(slots=2, block_size=4, blocks=4)
        first = _requests([(0.0, tuple(range(8)), 1)])  # 8 positions → 2 blocks
        sched.load(first)
        sched.admit(now=0.0)
        big = Request(rid=9, arrival=0.1, prompt=tuple(range(10)), max_new=2)
        sched.queue.append(big)
        sched.admit(now=0.2)
        assert big.rid not in {s.request.rid for s in sched.active.values()}
        assert sched.stats["hol_blocked_steps"] == 1

    def test_evict_frees_blocks(self):
        sched = self._sched(slots=2, blocks=4)
        sched.load(_requests([(0.0, (1, 2, 3), 2)]))
        (state,) = sched.admit(now=0.0)
        assert sched.cache.pools[0].in_use == 1
        sched.finish(state.slot, now=1.0)
        assert sched.cache.pools[0].in_use == 0
        assert state.finish_time == 1.0

    def test_impossible_request_rejected_at_load(self):
        sched = self._sched(slots=1, block_size=4, blocks=2)
        huge = _requests([(0.0, tuple(range(30)), 4)])
        with pytest.raises(ValueError, match="never be admitted"):
            sched.load(huge)


# ----------------------------------------------------------------------
# latency statistics
# ----------------------------------------------------------------------
class TestPercentile:
    def test_hand_built_trace(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(xs, 50.0) == pytest.approx(5.5)
        assert percentile(xs, 99.0) == pytest.approx(9.91)
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 10.0

    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(0)
        xs = rng.exponential(size=37).tolist()
        for p in (50.0, 90.0, 99.0):
            assert percentile(xs, p) == pytest.approx(float(np.percentile(xs, p)), rel=1e-12)

    def test_singleton_and_empty(self):
        assert percentile([3.25], 99.0) == 3.25
        with pytest.raises(ValueError):
            percentile([], 50.0)


# ----------------------------------------------------------------------
# decode equivalence: engines vs a naive full-recompute serial decoder
# ----------------------------------------------------------------------
def _serial_greedy_decode(cfg, params, prompt, max_new):
    """Full-recompute causal decode with plain numpy — no KV cache at all."""
    table = params["embedding.table"]
    tokens = list(prompt)
    n, d = cfg.num_heads, cfg.head_dim
    for _ in range(max_new):
        x = table[np.array(tokens)]  # [t, h]
        t = x.shape[0]
        mask = np.tril(np.ones((t, t), dtype=bool))
        for layer in range(cfg.num_layers):
            pre = f"layer{layer}."
            p = {k[len(pre) :]: v for k, v in params.items() if k.startswith(pre)}
            a, _, _ = layernorm_fwd(x, p["ln1.gamma"], p["ln1.beta"], cfg.ln_eps)
            qkv = (a @ p["attn.wqkv"] + p["attn.bqkv"]).reshape(t, n, 3, d)
            qh, kh, vh = qkv[:, :, 0], qkv[:, :, 1], qkv[:, :, 2]
            scores = np.einsum("ind,jnd->nij", qh, kh) / math.sqrt(d)
            scores = np.where(mask[None], scores, -np.inf)
            probs = np.exp(scores - scores.max(axis=-1, keepdims=True))
            probs = probs / probs.sum(axis=-1, keepdims=True)
            ctx = np.einsum("nij,jnd->ind", probs, vh).reshape(t, n * d)
            x = x + ctx @ p["attn.wo"] + p["attn.bo"]
            m, _, _ = layernorm_fwd(x, p["ln2.gamma"], p["ln2.beta"], cfg.ln_eps)
            x = x + gelu(m @ p["mlp.w1"] + p["mlp.b1"]) @ p["mlp.w2"] + p["mlp.b2"]
        out, _, _ = layernorm_fwd(x, params["final_ln.gamma"], params["final_ln.beta"], cfg.ln_eps)
        logits = out[-1] @ table.T
        tokens.append(int(np.argmax(logits)))
    return tokens[len(prompt) :]


def _engine_tokens(scheme, requests, slots=8, blocks=16):
    engine = make_engine(scheme, CFG, PARAMS, 2, slots, 8, blocks)
    result = engine.run(requests)
    return {
        s.request.rid: list(s.generated)
        for s in sorted(result.completed, key=lambda s: s.request.rid)
    }


_EQUIV_SPECS = [
    (0.0, (5, 11, 23), 4),
    (0.0, (40, 1), 3),
    (0.0002, (7, 7, 7, 9, 13, 2, 30, 19, 44), 5),  # spans two KV blocks
]


class TestDecodeEquivalence:
    REQS = _requests(_EQUIV_SPECS)

    def test_optimus_matches_serial_reference(self):
        got = _engine_tokens("optimus", self.REQS)
        for r in self.REQS:
            expect = _serial_greedy_decode(CFG, PARAMS, r.prompt, r.max_new)
            assert got[r.rid] == expect, f"rid {r.rid}"

    def test_megatron_matches_serial_reference(self):
        got = _engine_tokens("megatron", self.REQS)
        for r in self.REQS:
            expect = _serial_greedy_decode(CFG, PARAMS, r.prompt, r.max_new)
            assert got[r.rid] == expect, f"rid {r.rid}"

    def test_batching_invariance(self):
        """slots=2 (sequential-ish) and slots=8 (batched) sample the same
        tokens — continuous batching must not change any request's output."""
        a = _engine_tokens("optimus", self.REQS, slots=2, blocks=16)
        b = _engine_tokens("optimus", self.REQS, slots=8, blocks=16)
        assert a == b

    def test_conservation_of_phase_attribution(self):
        engine = make_engine("optimus", CFG, PARAMS, 2, 8, 8, 16)
        result = engine.run(TrafficGenerator(0, CFG.vocab_size, num_requests=6).generate())
        assert sum(result.attribution.values()) == pytest.approx(result.clock, rel=1e-9)
        assert result.attribution["idle"] >= 0.0

    def test_kv_pool_drained_after_run(self):
        engine = make_engine("megatron", CFG, PARAMS, 2, 8, 8, 32)
        engine.run(TrafficGenerator(1, CFG.vocab_size, num_requests=6).generate())
        assert all(p.in_use == 0 for p in engine.cache.pools.values())
        assert all(p.peak_in_use > 0 for p in engine.cache.pools.values())
        for r in engine.sim.ranks:
            meter = engine.sim.device(r).memory
            assert meter.by_tag.get(KV_MEMORY_TAG, 0) == 0


# ----------------------------------------------------------------------
# report: determinism, A/B, SLO gate
# ----------------------------------------------------------------------
class TestReport:
    def test_quick_report_is_byte_deterministic(self):
        a = run_serve(0, quick=True)
        b = run_serve(0, quick=True)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_schemes_agree_on_tokens(self):
        rep = run_serve(0, quick=True)
        by_scheme = {e["scheme"]: e for e in rep["schemes"]}
        assert by_scheme["optimus"]["tokens_sha256"] == by_scheme["megatron"]["tokens_sha256"]

    def test_ab_bit_exact(self):
        ab = run_ab(0, quick=True, requests=6)
        assert ab["equal"] is True

    def test_slo_gate_passes_self_and_fails_regression(self):
        rep = run_serve(0, quick=True, requests=6)
        ok, _ = compare_reports(rep, rep, threshold=0.20)
        assert ok
        doctored = json.loads(json.dumps(rep))
        e = doctored["schemes"][0]
        e["e2e_s"]["p99"] /= 2.0  # current looks 2× slower than baseline
        ok, lines = compare_reports(rep, doctored, threshold=0.20)
        assert not ok
        assert any("p99" in line and "FAIL" in line for line in lines)
        e["goodput_tokens_per_s"] *= 10.0  # current goodput looks collapsed
        ok, lines = compare_reports(rep, doctored, threshold=0.20)
        assert any("goodput" in line and "FAIL" in line for line in lines)

    def test_missing_arm_fails_gate(self):
        rep = run_serve(0, quick=True, requests=6)
        partial = json.loads(json.dumps(rep))
        partial["schemes"] = partial["schemes"][:1]
        ok, lines = compare_reports(partial, rep, threshold=0.20)
        assert not ok and any("missing" in line for line in lines)


# ----------------------------------------------------------------------
# ledger + dash integration
# ----------------------------------------------------------------------
class TestLedgerServe:
    def test_serve_kind_accepted_with_extras(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_serve(0, quick=True, requests=6, ledger=led)
        records = led.read()
        assert {r.kind for r in records} == {"serve"}
        assert {r.scheme for r in records} == {"optimus", "megatron"}
        for r in records:
            assert r.extra["num_requests"] == 6
            assert r.extra["traffic_seed"] == 0
            assert r.label.startswith("serve/")
            assert r.counters["total_bytes_comm"] > 0

    def test_scheme_of_uses_engine_attribute(self):
        from repro.obs.ledger import _scheme_of

        engine = make_engine("optimus", CFG, PARAMS, 2, 8, 8, 16)
        assert _scheme_of(engine) == "optimus"
        assert _scheme_of(engine.model) == "optimus"  # class-name path intact

    def test_compact_keeps_newest_per_traffic(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        led = RunLedger(path)
        run_serve(0, quick=True, requests=6, ledger=led)  # 2 arms
        run_serve(1, quick=True, requests=6, ledger=led)  # different seed: kept
        run_serve(0, quick=True, requests=6, ledger=led)  # same-key rerun: wins
        assert len(led.read()) == 6
        summary = compact(led)
        survivors = led.read()
        assert summary["dropped"] == 2  # only the seed-0 duplicates collapse
        assert len(survivors) == 4
        seeds = sorted(r.seed for r in survivors)
        assert seeds == [0, 0, 1, 1]

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            RunRecord(kind="deploy")

    def test_dash_serving_section(self, tmp_path):
        from repro.obs.claims import scorecard
        from repro.obs.dash import render_html, serving_rows

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_serve(0, quick=True, requests=6, ledger=led)
        records = led.read()
        rows = serving_rows(records)
        arms = {(r["scheme"], r["arrival"]) for r in rows}
        assert arms == {("optimus", "poisson"), ("megatron", "poisson")}
        html_text = render_html(records, scorecard(records), [])
        assert "<h2>Serving</h2>" in html_text
        assert "tok/s" in html_text
        assert "<script" not in html_text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_serve_writes_report_and_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        out1 = str(tmp_path / "a.json")
        out2 = str(tmp_path / "b.json")
        argv = ["serve", "--quick", "--seed", "0", "--requests", "6", "--out"]
        assert main(argv + [out1]) == 0
        assert main(argv + [out2]) == 0
        with open(out1) as f1, open(out2) as f2:
            assert f1.read() == f2.read()  # byte-identical across invocations

        # gate against self passes; doctored baseline fails
        assert main(argv + [out1, "--compare", out2]) == 0
        with open(out2) as f:
            doc = json.load(f)
        for e in doc["schemes"]:
            e["e2e_s"]["p99"] /= 10.0
            e["goodput_tokens_per_s"] *= 10.0
        with open(out2, "w") as f:
            json.dump(doc, f)
        assert main(argv + [out1, "--compare", out2]) == 1
        capsys.readouterr()

    def test_serve_ab_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "ab.json")
        rc = main(["serve", "--quick", "--seed", "0", "--requests", "4", "--ab", "--out", out])
        assert rc == 0
        with open(out) as f:
            assert json.load(f)["equal"] is True
        assert "byte-identical" in capsys.readouterr().out


# ----------------------------------------------------------------------
# lifecycle knobs: validation
# ----------------------------------------------------------------------
class TestServingOptions:
    @pytest.mark.parametrize(
        "kw, flag",
        [
            ({"policy": "spill"}, "--policy"),
            ({"swap_blocks": -1}, "--swap-blocks"),
            ({"swap_gbps": 0.0}, "--swap-bw"),
            ({"deadline_s": 0.0}, "--deadline"),
            ({"deadline_s": -1.0}, "--deadline"),
            ({"max_retries": -1}, "--retries"),
            ({"max_queue_depth": 0}, "--max-queue-depth"),
        ],
    )
    def test_bad_knob_names_the_flag(self, kw, flag):
        with pytest.raises(ValueError, match=flag):
            ServingOptions(**kw)

    def test_defaults_are_disabled(self):
        assert ServingOptions().enabled is False

    @pytest.mark.parametrize(
        "kw",
        [
            {"policy": "preempt"},
            {"deadline_s": 1.0},
            {"max_retries": 1},
            {"max_queue_depth": 4},
        ],
    )
    def test_any_lifecycle_knob_enables(self, kw):
        assert ServingOptions(**kw).enabled is True

    @pytest.mark.parametrize(
        "kw, flag",
        [({"slo_ttft": 0.0}, "--slo-ttft"), ({"slo_tpot": -1.0}, "--slo-tpot")],
    )
    def test_run_serve_validates_slo_targets(self, kw, flag):
        with pytest.raises(ValueError, match=flag):
            run_serve(0, quick=True, requests=4, **kw)


# ----------------------------------------------------------------------
# traffic edge cases
# ----------------------------------------------------------------------
class TestTrafficEdgeCases:
    def test_zero_length_prompt_rejected(self):
        with pytest.raises(ValueError, match="zero-length prompt"):
            Request(rid=0, arrival=0.0, prompt=(), max_new=2)

    def test_generator_rejects_zero_prompt_lengths(self):
        with pytest.raises(ValueError, match="zero-length"):
            TrafficGenerator(
                0, CFG.vocab_size, prompt_lengths=((0, 4), (0.5, 0.5))
            )

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            Request(rid=0, arrival=0.0, prompt=(1,), max_new=1, deadline_s=0.0)
        with pytest.raises(ValueError, match="deadline"):
            TrafficGenerator(0, CFG.vocab_size, deadline_s=-0.5)

    def test_output_exactly_at_kv_capacity_boundary(self):
        # pool: 4 blocks × 4 positions = 16 KV positions per group; the
        # request's kv_positions (prompt + max_new - 1) lands exactly on it
        req = Request(rid=0, arrival=0.0, prompt=tuple(range(1, 9)), max_new=9)
        assert req.kv_positions == 16
        engine = make_engine("optimus", CFG, PARAMS, 2, 2, 4, 4)
        result = engine.run([req])
        assert len(result.completed) == 1
        assert len(result.completed[0].generated) == 9
        assert all(p.in_use == 0 for p in engine.cache.pools.values())

    def test_one_past_kv_capacity_never_admits(self):
        req = Request(rid=0, arrival=0.0, prompt=tuple(range(1, 9)), max_new=10)
        engine = make_engine("optimus", CFG, PARAMS, 2, 2, 4, 4)
        with pytest.raises(ValueError, match="could never be admitted"):
            engine.run([req])

    def test_burst_beyond_queue_bound_sheds_deterministically(self):
        gen = TrafficGenerator(
            0, CFG.vocab_size, arrival="bursty", burst_size=8, num_requests=16
        )
        opts = ServingOptions(max_queue_depth=3)

        def shed():
            engine = make_engine("optimus", CFG, PARAMS, 2, 2, 8, 8, options=opts)
            result = engine.run(gen.generate())
            return result.lifecycle

        a, b = shed(), shed()
        assert a == b  # deterministic shed accounting
        assert a["rejected_shed"] > 0
        assert a["shed_rids"] == sorted(a["shed_rids"])  # reported lowest-rid first
        assert len(a["shed_rids"]) == a["rejected_shed"]


# ----------------------------------------------------------------------
# preemption: swap and recompute keep tokens identical
# ----------------------------------------------------------------------
class TestPreemption:
    # 6 requests whose full footprints cannot all be reserved up front:
    # conservative reservation serializes, preemption overlaps them
    REQS = _requests([
        (0.0, (5, 11, 23, 8), 6),
        (0.0, (40, 1, 3), 7),
        (0.0, (7, 9, 13), 6),
        (0.0, (2, 30, 19), 7),
        (0.0, (22, 4), 6),
        (0.0, (17, 6, 2), 6),
    ])

    def _run(self, options):
        engine = make_engine("optimus", CFG, PARAMS, 2, 6, 4, 4, options=options)
        result = engine.run(self.REQS)
        tokens = {
            s.request.rid: list(s.generated)
            for s in sorted(result.completed, key=lambda s: s.request.rid)
        }
        return tokens, result

    def test_swap_path_preserves_tokens(self):
        baseline, _ = self._run(None)
        opts = ServingOptions(policy="preempt", swap_blocks=16)
        tokens, result = self._run(opts)
        assert tokens == baseline
        lc = result.lifecycle
        assert lc["preempted"] > 0 and lc["swapped_out"] > 0
        assert lc["swapped_in"] == lc["swapped_out"]
        assert result.cache_stats["host_swap"]["swap_out_count"] == lc["swapped_out"]
        assert "swap" in result.attribution
        assert result.attribution["swap"] > 0.0

    def test_recompute_path_preserves_tokens(self):
        baseline, _ = self._run(None)
        opts = ServingOptions(policy="preempt", swap_blocks=0)
        tokens, result = self._run(opts)
        assert tokens == baseline
        lc = result.lifecycle
        assert lc["preempted"] > 0 and lc["recomputed"] > 0
        assert lc["recomputed_tokens"] > 0
        assert lc["swapped_out"] == 0

    def test_preempt_runs_are_deterministic(self):
        opts = ServingOptions(policy="preempt", swap_blocks=16)
        _, a = self._run(opts)
        _, b = self._run(opts)
        assert a.lifecycle == b.lifecycle
        assert a.attribution == b.attribution
        assert a.clock == b.clock

    def test_attribution_still_telescopes_under_preemption(self):
        for swap_blocks in (0, 16):
            opts = ServingOptions(policy="preempt", swap_blocks=swap_blocks)
            _, result = self._run(opts)
            assert sum(result.attribution.values()) == pytest.approx(
                result.clock, rel=1e-9
            )

    def test_swap_meters_drain(self):
        opts = ServingOptions(policy="preempt", swap_blocks=16)
        engine = make_engine("optimus", CFG, PARAMS, 2, 6, 4, 4, options=opts)
        engine.run(self.REQS)
        assert engine.swap is not None
        assert engine.swap.blocks_held == 0
        assert engine.swap.peak_blocks > 0
        assert engine.swap.meter.current == 0


# ----------------------------------------------------------------------
# deadlines, retries, backpressure
# ----------------------------------------------------------------------
class TestDeadlinesAndRetries:
    def test_queued_expiry_rejects_without_retry(self):
        # slot 0 is busy with a long request; rid 1's deadline lapses queued
        reqs = [
            Request(rid=0, arrival=0.0, prompt=(5, 11), max_new=12),
            Request(rid=1, arrival=0.0, prompt=(7,), max_new=2, deadline_s=1e-6),
        ]
        opts = ServingOptions(deadline_s=None)
        engine = make_engine("megatron", CFG, PARAMS, 2, 1, 8, 16, options=opts)
        result = engine.run(reqs)
        lc = result.lifecycle
        assert lc["rejected_deadline"] == 1
        assert lc["timeout_rids"] == [1]
        assert {s.request.rid for s in result.completed} == {0}

    def test_midflight_timeout_aborts_and_frees_kv(self):
        reqs = [Request(rid=0, arrival=0.0, prompt=(5, 11), max_new=50, deadline_s=1e-6)]
        opts = ServingOptions(max_retries=0, deadline_s=None)
        engine = make_engine("optimus", CFG, PARAMS, 2, 2, 8, 16, options=opts)
        result = engine.run(reqs)
        assert result.lifecycle["timed_out"] == 1
        assert not result.completed
        assert all(p.in_use == 0 for p in engine.cache.pools.values())

    def test_retry_budget_is_spent_then_exhausted(self):
        reqs = [Request(rid=0, arrival=0.0, prompt=(5,), max_new=50, deadline_s=1e-6)]
        opts = ServingOptions(max_retries=2)
        engine = make_engine("optimus", CFG, PARAMS, 2, 2, 8, 16, options=opts)
        result = engine.run(reqs)
        lc = result.lifecycle
        assert lc["retried"] == 2  # budget fully spent
        assert lc["timeout_rids"] == [0]  # then the request is abandoned

    def test_default_report_has_no_lifecycle_sections(self):
        rep = run_serve(0, quick=True, requests=4)
        assert "lifecycle" not in rep["serving"]
        for e in rep["schemes"]:
            assert "lifecycle" not in e
            assert "swap" not in e["phases_s"]
            assert "recovery" not in e["phases_s"]

    def test_lifecycle_report_sections_appear_when_enabled(self):
        rep = run_serve(
            0, quick=True, requests=4, policy="preempt", swap_blocks=8,
            deadline=5.0, retries=1, max_queue_depth=8,
        )
        assert rep["serving"]["lifecycle"]["policy"] == "preempt"
        assert rep["serving"]["lifecycle"]["swap_blocks"] == 8
        for e in rep["schemes"]:
            lc = e["lifecycle"]
            for key in ("rejected_shed", "rejected_deadline", "retried",
                        "preempted", "timed_out"):
                assert key in lc
