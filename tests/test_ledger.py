"""Run ledger, OpenMetrics exporter, claims scorecard and dashboard.

Covers the PR's hard guarantees: append-only storage, byte-deterministic
records, zero numeric/clock drift with the ledger enabled, OpenMetrics
grammar conformance, claim verdicts with measured-vs-predicted ratios,
and the satellite fixes (empty-histogram errors, byte-stable snapshots,
comm-matrix reconciliation under fault injection with retries).
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.config import tiny_config
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    canonical_json,
    config_fingerprint,
    json_safe,
    latest,
    record_from_sim,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    bucket_bounds,
    render_export,
    render_registry,
    validate_openmetrics,
)


def _tiny_trainer(ledger=None, steps_seed=0):
    from repro.core import OptimusModel
    from repro.mesh import Mesh
    from repro.nn import init_transformer_params
    from repro.runtime import Simulator
    from repro.training.data import BatchStream
    from repro.training.optim import Adam
    from repro.training.trainer import Trainer

    cfg = tiny_config(num_layers=2)
    sim = Simulator.for_mesh(q=2)
    model = OptimusModel(Mesh(sim, 2), cfg, init_transformer_params(cfg, seed=1))
    return Trainer(
        model,
        Adam(model.parameters(), lr=1e-2),
        BatchStream.copy_task(cfg, 4, seed=steps_seed),
        ledger=ledger,
        run_label="test-train",
        seed=steps_seed,
    )


@pytest.fixture(scope="module")
def evidence_ledger(tmp_path_factory):
    """One fully-collected ledger shared by the claims/dash tests."""
    from repro.obs.dash import collect

    path = tmp_path_factory.mktemp("ledger") / "ledger.jsonl"
    led = RunLedger(str(path))
    collect(led, printer=lambda _: None)
    return led


# ----------------------------------------------------------------------
# RunRecord
# ----------------------------------------------------------------------
class TestRunRecord:
    def test_identical_runs_are_byte_identical(self, tmp_path):
        lines = []
        for _ in range(2):
            trainer = _tiny_trainer()
            trainer.train_steps(3)
            lines.append(trainer.ledger_record().to_line())
        assert lines[0] == lines[1]

    def test_run_id_is_a_content_hash(self):
        r1 = RunRecord(kind="train", label="a", git="abc")
        r2 = RunRecord(kind="train", label="a", git="abc")
        r3 = RunRecord(kind="train", label="b", git="abc")
        assert r1.run_id == r2.run_id
        assert r1.run_id != r3.run_id
        assert len(r1.run_id) == 16

    def test_round_trip(self):
        r = RunRecord(kind="bench", label="suite", extra={"x": 1})
        doc = json.loads(r.to_line())
        back = RunRecord.from_json(doc)
        assert back == r

    def test_unknown_kind_and_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            RunRecord(kind="nonsense")
        with pytest.raises(ValueError, match="unknown ledger record fields"):
            RunRecord.from_json(
                {"kind": "train", "schema": "repro-ledger-v1", "bogus": 1}
            )
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_json({"kind": "train", "schema": "other-v9"})

    def test_json_safe_scrubs_nonfinite_and_numpy(self):
        doc = json_safe(
            {
                "nan": float("nan"),
                "inf": float("inf"),
                "np": np.float64(1.5),
                "nested": [np.int64(3), {"x": float("-inf")}],
            }
        )
        assert doc == {"nan": None, "inf": None, "np": 1.5, "nested": [3, {"x": None}]}
        canonical_json(doc)  # must not raise (allow_nan=False)

    def test_config_fingerprint_stable_and_sensitive(self):
        cfg = tiny_config(num_layers=2)
        assert config_fingerprint(cfg) == config_fingerprint(tiny_config(num_layers=2))
        assert config_fingerprint(cfg) != config_fingerprint(tiny_config(num_layers=4))

    def test_record_from_sim_reads_counters(self):
        trainer = _tiny_trainer()
        trainer.train_steps(2)
        rec = record_from_sim("train", trainer.sim, label="x", scheme="optimus")
        assert rec.clock == trainer.sim.elapsed()
        assert rec.counters["peak_memory_bytes"] == int(trainer.sim.peak_memory())
        assert len(rec.watermarks) == trainer.sim.num_ranks
        assert rec.counters["total_bytes_comm"] > 0
        ranks = [w["rank"] for w in rec.watermarks]
        assert ranks == sorted(ranks)


# ----------------------------------------------------------------------
# RunLedger storage
# ----------------------------------------------------------------------
class TestRunLedger:
    def test_append_only(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        led.append(RunRecord(kind="train", label="first", git="x"))
        before = open(led.path, "rb").read()
        led.append(RunRecord(kind="bench", label="second", git="x"))
        after = open(led.path, "rb").read()
        assert after.startswith(before)  # earlier lines are never rewritten
        assert len(led) == 2
        assert led.kinds() == {"train": 1, "bench": 1}

    def test_directory_path_resolves_to_default_file(self, tmp_path):
        led = RunLedger(str(tmp_path) + os.sep)
        assert led.path.endswith("ledger.jsonl")

    def test_corrupt_line_raises_with_location(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        led.append(RunRecord(kind="train", git="x"))
        with open(led.path, "a") as f:
            f.write("{not json\n")
        with pytest.raises(ValueError, match=r"ledger\.jsonl:2"):
            led.read()

    def test_latest_matches_attributes(self, tmp_path):
        records = [
            RunRecord(kind="train", label="a", git="x"),
            RunRecord(kind="bench", label="b", git="x"),
            RunRecord(kind="train", label="c", git="x"),
        ]
        found = latest(records, kind="train")
        assert found.label == "c"
        assert latest(records, kind="chaos") is None

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert RunLedger.from_env() is None
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "l.jsonl"))
        assert RunLedger.from_env().path == str(tmp_path / "l.jsonl")


# ----------------------------------------------------------------------
# zero drift: the ledger must be a pure observer
# ----------------------------------------------------------------------
class TestZeroDrift:
    def test_losses_and_clocks_identical_with_ledger_on(self, tmp_path):
        off = _tiny_trainer(ledger=None)
        log_off = off.train_steps(5)

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        on = _tiny_trainer(ledger=led)
        log_on = on.train_steps(5)

        assert log_on.losses == log_off.losses  # bit-identical, not approx
        assert on.sim.elapsed() == off.sim.elapsed()
        assert log_on.step_times == log_off.step_times
        assert len(led) == 1
        rec = led.read()[0]
        assert rec.kind == "train" and rec.scheme == "optimus"
        assert rec.extra["losses"] == log_off.losses
        assert rec.clock == off.sim.elapsed()

    def test_resilient_trainer_appends_record(self, tmp_path):
        from repro.resilience.chaos import _make_trainer

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        trainer = _make_trainer(
            "megatron", tiny_config(num_layers=2), 0, resilient=True, ledger=led
        )
        trainer.train_steps(2)
        (rec,) = led.read()
        assert rec.kind == "train" and rec.scheme == "megatron"


# ----------------------------------------------------------------------
# pipeline runs write ledger records like every other scheme
# ----------------------------------------------------------------------
def _pipeline_trainer(ledger=None, schedule="1f1b"):
    from repro.training.data import BatchStream
    from repro.training.trainer import make_pipeline_trainer

    cfg = tiny_config(num_layers=2)
    return make_pipeline_trainer(
        cfg,
        BatchStream.copy_task(cfg, 4, seed=0),
        schedule=schedule,
        num_micro_batches=2,
        num_stages=2,
        seed=1,
        ledger=ledger,
        run_label=f"test-pipeline-{schedule}",
    )


class TestPipelineLedger:
    def test_pipeline_trainer_appends_scheme_tagged_record(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        trainer = _pipeline_trainer(ledger=led)
        trainer.train_steps(3)
        (rec,) = led.read()
        assert rec.kind == "train" and rec.scheme == "pipeline"
        assert rec.extra["pipeline"] == {
            "schedule": "1f1b",
            "num_stages": 2,
            "num_micro_batches": 2,
        }
        assert rec.clock == trainer.sim.elapsed()
        assert rec.counters["total_bytes_comm"] > 0  # p2p activations charged

    def test_pipeline_records_are_byte_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        lines = []
        for _ in range(2):
            trainer = _pipeline_trainer()
            trainer.train_steps(2)
            lines.append(trainer.ledger_record().to_line())
        assert lines[0] == lines[1]

    def test_gpipe_and_1f1b_records_are_distinct(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        recs = {}
        for schedule in ("gpipe", "1f1b"):
            trainer = _pipeline_trainer(schedule=schedule)
            trainer.train_steps(2)
            recs[schedule] = trainer.ledger_record()
        assert recs["gpipe"].run_id != recs["1f1b"].run_id
        # identical numerics: the schedules differ only in ordering/memory
        assert recs["gpipe"].extra["losses"] == recs["1f1b"].extra["losses"]

    def test_trainer_honors_repro_ledger_env(self, tmp_path, monkeypatch):
        path = tmp_path / "env-ledger.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(path))
        trainer = _pipeline_trainer()  # no explicit ledger: env wiring
        trainer.train_steps(2)
        (rec,) = RunLedger(str(path)).read()
        assert rec.kind == "train" and rec.scheme == "pipeline"
        assert rec.extra["pipeline"]["schedule"] == "1f1b"

    def test_zero_drift_with_pipeline_ledger_on(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        off = _pipeline_trainer()
        log_off = off.train_steps(3)
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        on = _pipeline_trainer(ledger=led)
        log_on = on.train_steps(3)
        assert log_on.losses == log_off.losses  # bit-identical, not approx
        assert on.sim.elapsed() == off.sim.elapsed()
        assert len(led) == 1


# ----------------------------------------------------------------------
# producers: bench / chaos / experiments
# ----------------------------------------------------------------------
class TestProducers:
    def test_bench_record_wraps_results_doc(self, tmp_path):
        from repro.bench.cli import append_bench_record

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        doc = {"schema": "repro-bench-v1", "benchmarks": {}, "calibration": {}}
        run_id = append_bench_record(led, doc, only=["micro"])
        (rec,) = led.read()
        assert rec.run_id == run_id
        assert rec.kind == "bench"
        assert rec.extra["results"]["schema"] == "repro-bench-v1"
        assert rec.extra["only"] == ["micro"]

    def test_stem_runner_appends_experiment_record(self, tmp_path):
        from repro.experiments.runner import run_optimus_stem

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        cfg = tiny_config(num_layers=2)
        res = run_optimus_stem(cfg, 2, 4, ledger=led, run_label="unit")
        (rec,) = led.read()
        assert rec.kind == "experiment" and rec.scheme == "optimus"
        assert rec.extra["workload"] == "stem"
        assert rec.extra["result"]["peak_memory_bytes"] == res.peak_memory_bytes
        assert rec.mesh["q"] == 2
        assert rec.config["fingerprint"] == config_fingerprint(cfg)


# ----------------------------------------------------------------------
# OpenMetrics exporter + validator
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("steps", scheme="optimus").inc(5)
        reg.gauge("mem/peak", rank=0).set(2.5e9)
        h = reg.histogram("step_time")
        for i in range(10):
            h.observe(0.01 * (i + 1))
        return reg

    def test_registry_render_is_valid(self):
        text = render_registry(self._registry())
        assert validate_openmetrics(text) == []
        assert "# TYPE repro_steps counter" in text
        assert 'repro_steps_total{scheme="optimus"} 5' in text
        assert 'repro_step_time_bucket{le="+Inf"} 10' in text
        assert text.rstrip().endswith("# EOF")

    def test_truncated_histogram_keeps_true_count_in_inf_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("t")
        h.max_samples = 4
        for i in range(100):
            h.observe(float(i + 1))
        text = render_registry(reg)
        assert validate_openmetrics(text) == []
        assert 'repro_t_bucket{le="+Inf"} 100' in text
        assert "repro_t_count 100" in text

    def test_export_render_is_valid_summary(self):
        entries = self._registry().export()
        text = render_export(entries, extra_labels={"run_id": "abc", "kind": "train"})
        assert validate_openmetrics(text) == []
        assert "# TYPE repro_step_time summary" in text
        assert 'quantile="0.5"' in text and 'quantile="0.99"' in text

    def test_render_deterministic_across_insertion_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", rank=0).inc()
        a.counter("x", rank="all").inc()
        a.gauge("y").set(1)
        b.gauge("y").set(1)
        b.counter("x", rank="all").inc()
        b.counter("x", rank=0).inc()
        assert render_registry(a) == render_registry(b)

    def test_validator_catches_grammar_violations(self):
        assert validate_openmetrics("") != []  # no EOF
        bad = "orphan_metric 1\n# EOF"
        assert any("no preceding TYPE" in p for p in validate_openmetrics(bad))
        bad = "# TYPE c counter\nc 1\n# EOF"
        assert any("_total" in p for p in validate_openmetrics(bad))
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
            "h_sum 9\nh_count 5\n# EOF"
        )
        assert any("not cumulative" in p for p in validate_openmetrics(bad))
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\nh_bucket{le="+Inf"} 3\nh_sum 2\nh_count 7\n# EOF'
        )
        assert any("_count" in p for p in validate_openmetrics(bad))

    def test_bucket_bounds_ladder(self):
        bounds = bucket_bounds(1.0, 256.0)
        assert bounds[0] == 1.0 and bounds[-1] == 256.0
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        # zero-crossing data falls back to a linear ladder
        linear = bucket_bounds(-4.0, 4.0)
        assert linear[0] == -4.0 and linear[-1] == 4.0
        steps = [b - a for a, b in zip(linear, linear[1:])]
        assert all(math.isclose(s, steps[0]) for s in steps)
        assert bucket_bounds(3.0, 3.0) == [3.0]


# ----------------------------------------------------------------------
# paper-claims scorecard
# ----------------------------------------------------------------------
class TestClaims:
    def test_scorecard_on_empty_ledger_reports_no_evidence(self):
        from repro.obs.claims import scorecard

        card = scorecard([])
        assert card["num_no_evidence"] == len(card["claims"]) == 9
        assert card["num_fail"] == 0 and card["ok"]

    def test_all_claims_pass_on_collected_evidence(self, evidence_ledger):
        from repro.obs.claims import render, scorecard

        card = scorecard(evidence_ledger.read())
        assert card["ok"] and card["num_fail"] == 0
        assert card["num_pass"] == 9
        by = {c["claim"]: c for c in card["claims"]}
        for c in by.values():
            lo, hi = c["band"]
            assert lo <= c["ratio"] <= hi
            assert c["evidence"]
        # calibrated landmarks: memory tracks the allocator, the growth
        # advantage exists, speedups land near the paper's
        assert by["memory-scaling/optimus/p64"]["ratio"] == pytest.approx(1.0, abs=0.05)
        assert by["isoefficiency"]["measured"] > 1.0
        assert by["speedup-training"]["measured"] == pytest.approx(1.35, abs=0.15)
        assert by["speedup-inference"]["measured"] == pytest.approx(1.60, abs=0.15)
        assert by["strong-scaling"]["measured"] > 1.0
        assert by["arrangement"]["measured"] > 1.0
        assert "scorecard" in render(card).lower()

    def test_ensure_claim_records_is_idempotent(self, evidence_ledger):
        from repro.obs.claims import ensure_claim_records

        n = len(evidence_ledger.read())
        assert ensure_claim_records(evidence_ledger) == []
        assert len(evidence_ledger.read()) == n


# ----------------------------------------------------------------------
# dashboard
# ----------------------------------------------------------------------
class TestDash:
    def test_collect_covers_all_required_kinds(self, evidence_ledger):
        kinds = evidence_ledger.kinds()
        assert kinds.get("train", 0) >= 1
        assert kinds.get("bench", 0) >= 1
        assert kinds.get("chaos", 0) >= 1
        assert kinds.get("experiment", 0) >= 4
        schedules = {
            r.extra["pipeline"]["schedule"]
            for r in evidence_ledger.read()
            if r.scheme == "pipeline"
        }
        assert schedules == {"gpipe", "1f1b"}

    def test_dash_main_renders_html_and_openmetrics(self, evidence_ledger, tmp_path):
        from repro.obs.dash import main as dash_main

        out = tmp_path / "dash.html"
        om = tmp_path / "metrics.txt"
        rc = dash_main(
            ledger=evidence_ledger.path,
            out=str(out),
            openmetrics_out=str(om),
            no_collect=True,
            printer=lambda _: None,
        )
        assert rc == 0
        html = out.read_text()
        assert "Paper-claims scorecard" in html
        assert "Trends across ledger records" in html
        assert "Run ledger" in html
        assert "<svg " in html  # inline charts, no JS
        assert "<script" not in html
        for rec in evidence_ledger.read():
            assert rec.run_id in html
        assert validate_openmetrics(om.read_text()) == []

    def test_dash_refuses_empty_ledger_without_collect(self, tmp_path):
        from repro.obs.dash import main as dash_main

        rc = dash_main(
            ledger=str(tmp_path / "empty.jsonl"),
            no_collect=True,
            printer=lambda _: None,
        )
        assert rc == 1


# ----------------------------------------------------------------------
# satellite: empty-histogram errors and snapshot determinism
# ----------------------------------------------------------------------
class TestHistogramEmptyErrors:
    def test_mean_names_the_metric(self):
        h = MetricsRegistry().histogram("latency/step")
        with pytest.raises(ValueError, match="latency/step.*empty"):
            _ = h.mean

    def test_percentile_names_the_metric(self):
        h = MetricsRegistry().histogram("latency/step")
        with pytest.raises(ValueError, match="latency/step.*empty"):
            h.percentile(50)

    def test_percentile_range_check_comes_first(self):
        h = MetricsRegistry().histogram("x")
        with pytest.raises(ValueError, match=r"outside \[0, 100\]"):
            h.percentile(150)

    def test_snapshot_of_empty_histogram_still_works(self):
        reg = MetricsRegistry()
        reg.histogram("empty")
        assert reg.snapshot()["empty"]["count"] == 0

    def test_values_restore_normal_behavior(self):
        h = MetricsRegistry().histogram("x")
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0
        assert h.percentile(100) == 4.0


class TestSnapshotDeterminism:
    def test_snapshot_byte_stable_across_insertion_orders(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", scheme="optimus", rank=1).inc(2)
        a.gauge("g", rank="all").set(7)
        a.gauge("g", rank=0).set(3)
        b.gauge("g", rank=0).set(3)
        b.gauge("g", rank="all").set(7)
        b.counter("c", rank=1, scheme="optimus").inc(2)  # kwargs reordered
        sa, sb = a.snapshot(), b.snapshot()
        assert list(sa) == list(sb)
        assert canonical_json(sa) == canonical_json(sb)

    def test_mixed_type_label_values_do_not_raise(self):
        reg = MetricsRegistry()
        reg.gauge("g", rank=0).set(1)
        reg.gauge("g", rank="all").set(2)
        snap = reg.snapshot()  # sorting mixed int/str label values
        assert "g{rank=0}" in snap and "g{rank=all}" in snap
        assert [e["labels"] for e in reg.export()] == [{"rank": 0}, {"rank": "all"}]


# ----------------------------------------------------------------------
# satellite: comm-matrix reconciliation under fault injection
# ----------------------------------------------------------------------
class TestFaultInjectionReconciliation:
    def test_retried_collectives_still_reconcile(self):
        """Flaky-collective retries re-run the real collective, so every
        retried byte must appear in both the device counters and the trace
        the comm matrix is built from — the totals reconcile exactly."""
        from repro.obs.comm_matrix import comm_matrix, row_sums
        from repro.obs.comm_matrix import total as matrix_total
        from repro.resilience.chaos import _make_trainer
        from repro.resilience.faults import FaultSchedule, TransientCollectiveFault
        from repro.resilience.injector import FaultInjector

        schedule = FaultSchedule.of(
            TransientCollectiveFault(step=1, index=1, kind="reduce", fails=2, mode="flaky"),
            TransientCollectiveFault(step=3, index=2, kind="reduce", fails=1, mode="flaky"),
        )
        injector = FaultInjector(schedule, seed=7)
        trainer = _make_trainer(
            "optimus", tiny_config(num_layers=2), 7,
            resilient=True, trace=True, injector=injector,
        )
        trainer.train_steps(4)
        assert injector.stats["retries"] >= 3  # the faults actually fired
        sim = trainer.sim
        mat = comm_matrix(sim)
        for r, s in enumerate(row_sums(mat)):
            assert s == pytest.approx(sim.device(r).bytes_comm, rel=1e-12)
        assert matrix_total(mat) == pytest.approx(sim.total_bytes_comm(), rel=1e-12)

    def test_retry_bytes_exceed_fault_free_run(self):
        from repro.resilience.chaos import _make_trainer
        from repro.resilience.faults import FaultSchedule, TransientCollectiveFault
        from repro.resilience.injector import FaultInjector

        clean = _make_trainer("optimus", tiny_config(num_layers=2), 7)
        clean.train_steps(4)

        injector = FaultInjector(
            FaultSchedule.of(
                TransientCollectiveFault(
                    step=1, index=1, kind="reduce", fails=2, mode="flaky"
                )
            ),
            seed=7,
        )
        chaos = _make_trainer(
            "optimus", tiny_config(num_layers=2), 7, resilient=True, injector=injector
        )
        log = chaos.train_steps(4)
        # same trajectory, more bytes: the retries are charged, not hidden
        assert log.losses == clean.log.losses
        assert chaos.sim.total_bytes_comm() > clean.sim.total_bytes_comm()
