"""Mesh coordinates, DTensor algebra, and partition/assemble round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.shape_array import ShapeArray
from repro.comm.group import ProcessGroup
from repro.mesh import (
    BLOCKED_2D,
    REPLICATED,
    ROW_BLOCKED,
    Mesh,
    assemble_blocked_2d,
    assemble_row_blocked,
    assemble_sharded_1d,
    distribute_blocked_2d,
    distribute_replicated,
    distribute_replicated_1d,
    distribute_row_blocked,
    distribute_sharded_1d,
)
from repro.mesh.layouts import SHARDED_1D
from repro.mesh.partition import assemble_row0_cols, block_slice, distribute_row0_cols
from repro.runtime import Simulator
from tests.conftest import make_mesh


class TestMesh:
    def test_coords_rank_roundtrip(self):
        mesh = make_mesh(3)
        for rank in mesh.ranks:
            i, j = mesh.coords(rank)
            assert mesh.rank(i, j) == rank

    def test_groups(self):
        mesh = make_mesh(3)
        assert mesh.row_group(1).ranks == (3, 4, 5)
        assert mesh.col_group(1).ranks == (1, 4, 7)
        assert mesh.world.size == 9

    def test_rows_and_cols_intersect_once(self):
        mesh = make_mesh(3)
        for i in range(3):
            for j in range(3):
                common = set(mesh.row_group(i).ranks) & set(mesh.col_group(j).ranks)
                assert common == {mesh.rank(i, j)}

    def test_bad_construction(self):
        sim = Simulator.for_flat(p=3)
        with pytest.raises(ValueError):
            Mesh(sim, 2)  # needs 4 ranks
        with pytest.raises(ValueError):
            Mesh(sim, 0)

    def test_bounds(self):
        mesh = make_mesh(2)
        with pytest.raises(ValueError):
            mesh.rank(2, 0)
        with pytest.raises(ValueError):
            mesh.coords(4)


class TestBlocked2D:
    def test_roundtrip(self, rng):
        mesh = make_mesh(3)
        a = rng.normal(size=(6, 9))
        dt = distribute_blocked_2d(mesh, a)
        assert dt.layout == BLOCKED_2D
        assert dt.local(mesh.rank(1, 2)).shape == (2, 3)
        np.testing.assert_array_equal(assemble_blocked_2d(dt), a)

    def test_block_contents(self, rng):
        mesh = make_mesh(2)
        a = rng.normal(size=(4, 4))
        dt = distribute_blocked_2d(mesh, a)
        np.testing.assert_array_equal(dt.local(mesh.rank(1, 0)), a[2:4, 0:2])

    def test_indivisible(self, rng):
        mesh = make_mesh(2)
        with pytest.raises(ValueError):
            distribute_blocked_2d(mesh, rng.normal(size=(5, 4)))

    def test_requires_2d(self, rng):
        mesh = make_mesh(2)
        with pytest.raises(ValueError):
            distribute_blocked_2d(mesh, rng.normal(size=(4, 4, 4)))

    def test_dryrun(self):
        mesh = make_mesh(2, backend="shape")
        dt = distribute_blocked_2d(mesh, ShapeArray((8, 8)))
        assert dt.local(0).shape == (4, 4)
        assert assemble_blocked_2d(dt).shape == (8, 8)


class TestRowBlockedAndReplicated:
    def test_row_blocked(self, rng):
        mesh = make_mesh(2)
        ids = rng.integers(0, 10, size=(4, 3))
        dt = distribute_row_blocked(mesh, ids)
        assert dt.layout == ROW_BLOCKED
        # replicated within a row
        np.testing.assert_array_equal(dt.local(mesh.rank(0, 0)), dt.local(mesh.rank(0, 1)))
        np.testing.assert_array_equal(dt.local(mesh.rank(1, 0)), ids[2:4])
        np.testing.assert_array_equal(assemble_row_blocked(dt), ids)

    def test_replicated(self, rng):
        mesh = make_mesh(2)
        a = rng.normal(size=(3, 3))
        dt = distribute_replicated(mesh, a)
        assert dt.layout == REPLICATED
        for r in mesh.ranks:
            np.testing.assert_array_equal(dt.local(r), a)

    def test_row0_cols(self, rng):
        mesh = make_mesh(2)
        v = rng.normal(size=(8,))
        dt = distribute_row0_cols(mesh, v)
        assert set(dt.shards) == {mesh.rank(0, 0), mesh.rank(0, 1)}
        np.testing.assert_array_equal(dt.local(mesh.rank(0, 1)), v[4:])
        np.testing.assert_array_equal(assemble_row0_cols(dt), v)
        with pytest.raises(ValueError):
            distribute_row0_cols(mesh, rng.normal(size=(4, 4)))


class TestSharded1D:
    def _group(self, p=3):
        sim = Simulator.for_flat(p=p)
        return ProcessGroup(sim, range(p))

    def test_roundtrip_axis0(self, rng):
        g = self._group()
        a = rng.normal(size=(6, 4))
        dt = distribute_sharded_1d(g, a, axis=0)
        assert dt.layout == SHARDED_1D(0)
        np.testing.assert_array_equal(assemble_sharded_1d(dt), a)

    def test_roundtrip_axis1(self, rng):
        g = self._group()
        a = rng.normal(size=(4, 6))
        dt = distribute_sharded_1d(g, a, axis=1)
        assert dt.local(1).shape == (4, 2)
        np.testing.assert_array_equal(assemble_sharded_1d(dt), a)

    def test_replicated_1d(self, rng):
        g = self._group()
        a = rng.normal(size=(2, 2))
        dt = distribute_replicated_1d(g, a)
        for r in g.ranks:
            np.testing.assert_array_equal(dt.local(r), a)
        # replicas are independent buffers
        dt.local(1)[0, 0] = 99.0
        assert dt.local(0)[0, 0] != 99.0


class TestDTensorAlgebra:
    def test_map_zipmap(self, rng):
        mesh = make_mesh(2)
        a = rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4))
        da, db = distribute_blocked_2d(mesh, a), distribute_blocked_2d(mesh, b)
        np.testing.assert_allclose(assemble_blocked_2d(da + db), a + b)
        np.testing.assert_allclose(assemble_blocked_2d(da - db), a - b)
        np.testing.assert_allclose(assemble_blocked_2d(da * 2.0), 2 * a)
        np.testing.assert_allclose(assemble_blocked_2d(da * db), a * b)
        np.testing.assert_allclose(assemble_blocked_2d(da.map(np.exp)), np.exp(a))

    def test_layout_mismatch_rejected(self, rng):
        mesh = make_mesh(2)
        da = distribute_blocked_2d(mesh, rng.normal(size=(4, 4)))
        dr = distribute_replicated(mesh, rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            _ = da + dr

    def test_copy_zeros_like(self, rng):
        mesh = make_mesh(2)
        da = distribute_blocked_2d(mesh, rng.normal(size=(4, 4)))
        c = da.copy()
        c.local(0)[0, 0] = 77.0
        assert da.local(0)[0, 0] != 77.0
        z = da.zeros_like()
        assert not assemble_blocked_2d(z).any()

    def test_dtype_and_nbytes(self, rng):
        mesh = make_mesh(2)
        da = distribute_blocked_2d(mesh, rng.normal(size=(4, 4)).astype(np.float32))
        assert da.shard_nbytes() == 4 * 4  # 2x2 block of float32


@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_blocked2d_roundtrip_property(q, mb, nb):
    """distribute∘assemble is the identity for any divisible shape."""
    rng = np.random.default_rng(q * 1000 + mb * 10 + nb)
    mesh = make_mesh(q)
    a = rng.normal(size=(q * mb, q * nb))
    np.testing.assert_array_equal(assemble_blocked_2d(distribute_blocked_2d(mesh, a)), a)


def test_block_slice():
    assert block_slice(12, 3, 1) == slice(4, 8)
    with pytest.raises(ValueError):
        block_slice(10, 3, 0)
