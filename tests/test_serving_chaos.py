"""Serving chaos campaigns: token-identical recovery, telescoping with the
recovery phase, the batched-SUMMA fallback regression, the preemption A/B
gate, and the friendly baseline/scheme error paths."""

import json

import pytest

from repro.config import tiny_config
from repro.core import summa
from repro.nn.init import init_transformer_params
from repro.obs.ledger import RunLedger
from repro.resilience.injector import FaultInjector
from repro.serving.chaos import (
    INJECTOR_KW,
    default_serving_schedule,
    run_serve_chaos,
)
from repro.serving.report import (
    PARAM_SEED,
    load_baseline,
    run_preempt_ab,
)
from repro.serving.traffic import TrafficGenerator

CFG = tiny_config(num_heads=4)
PARAMS = init_transformer_params(CFG, seed=PARAM_SEED)


@pytest.fixture(scope="module")
def quick_campaign():
    return run_serve_chaos(0, quick=True)


class TestServeChaos:
    def test_recovery_is_token_identical_on_both_schemes(self, quick_campaign):
        report = quick_campaign
        assert set(report["checks"]) == {"optimus", "megatron"}
        for scheme, check in report["checks"].items():
            assert check["token_identical"], scheme
            assert check["all_completed"], scheme
            assert check["crashes"] >= 1, scheme
            assert check["retries"] >= 1, scheme
            assert check["recovered_steps"] >= 2, scheme  # crash + timeout escape
        assert report["ok"] is True

    def test_attribution_telescopes_with_recovery_phase(self, quick_campaign):
        for entry in quick_campaign["arms"]:
            if entry["arm"] != "chaos":
                continue
            phases = entry["phases_s"]
            assert "recovery" in phases and phases["recovery"] > 0.0
            err = abs(sum(phases.values()) - entry["makespan_s"])
            assert err <= 1e-9 * max(entry["makespan_s"], 1.0)

    def test_campaign_is_deterministic(self, quick_campaign):
        again = run_serve_chaos(0, quick=True)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            quick_campaign, sort_keys=True
        )

    def test_chaos_costs_simulated_time(self, quick_campaign):
        by = {}
        for e in quick_campaign["arms"]:
            by[(e["scheme"], e["arm"])] = e
        for scheme in ("optimus", "megatron"):
            base = by[(scheme, "baseline")]
            chaos = by[(scheme, "chaos")]
            assert chaos["makespan_s"] > base["makespan_s"]
            assert chaos["tokens_sha256"] == base["tokens_sha256"]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown serving chaos scheme"):
            run_serve_chaos(0, quick=True, schemes=("bogus",))

    def test_serve_chaos_main_reports_bad_scheme(self, capsys):
        from repro.serving.chaos import main

        assert main(schemes=("bogus",)) == 2
        assert "unknown serving chaos scheme" in capsys.readouterr().out

    def test_training_chaos_main_reports_bad_scheme(self, capsys):
        from repro.resilience.chaos import main

        assert main(schemes=("bogus",)) == 2
        assert "unknown chaos scheme" in capsys.readouterr().out

    def test_schedule_varies_with_seed_but_stays_in_range(self):
        def steps(schedule):
            return [
                getattr(f, "step", None) or f.start_step
                for f in schedule.all_faults()
            ]

        a = default_serving_schedule(0, baseline_steps=20)
        b = default_serving_schedule(1, baseline_steps=20)
        assert steps(a) != steps(b)
        for schedule in (a, b):
            assert all(s <= 19 for s in steps(schedule))

    def test_ledger_records_serve_chaos_kind(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_serve_chaos(0, quick=True, schemes=("optimus",), ledger=led)
        records = led.read()
        assert {r.kind for r in records} == {"serve-chaos"}
        (rec,) = records
        assert rec.extra["token_identical"] is True
        assert rec.extra["recovered_steps"] >= 2
        assert rec.label.startswith("serve-chaos/")

    def test_dash_serve_chaos_section(self, tmp_path):
        from repro.obs.claims import scorecard
        from repro.obs.dash import render_html, serve_chaos_rows

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_serve_chaos(0, quick=True, schemes=("optimus",), ledger=led)
        records = led.read()
        rows = serve_chaos_rows(records)
        assert [r["scheme"] for r in rows] == ["optimus"]
        assert rows[0]["token_identical"] is True
        html_text = render_html(records, scorecard(records), [])
        assert "<h2>Serving under chaos</h2>" in html_text


class TestBatchedSummaFallback:
    """Armed fault injectors must force SUMMA back to per-rank execution
    (the batched engine cannot replay per-rank collective faults)."""

    def test_armed_injector_disables_batched(self):
        from repro.mesh import Mesh
        from repro.runtime import Simulator

        sim = Simulator.for_mesh(q=2)
        Mesh(sim, 2)
        schedule = default_serving_schedule(0, baseline_steps=20)
        inj = FaultInjector(schedule, seed=0, **INJECTOR_KW)
        inj.install(sim)
        try:
            assert not summa._batched_ready(sim)
        finally:
            inj.uninstall()
        assert summa._batched_ready(sim)

    def test_chaos_campaign_byte_equal_with_batched_flag(self, monkeypatch):
        """REPRO_SUMMA_BATCHED must not change a chaos campaign by a byte:
        the armed injector falls back to per-rank inside the chaos arm and
        the baseline arm is bit-exact by the PR 8 A/B guarantee."""
        saved = summa.effective_flags()
        try:
            monkeypatch.setenv("REPRO_SUMMA_BATCHED", "0")
            summa.resolve_env_flags()
            off = run_serve_chaos(0, quick=True, schemes=("optimus",))
            monkeypatch.setenv("REPRO_SUMMA_BATCHED", "1")
            summa.resolve_env_flags()
            on = run_serve_chaos(0, quick=True, schemes=("optimus",))
        finally:
            summa.configure(**saved)
        off["summa"] = on["summa"] = None  # flag echo differs by design
        assert json.dumps(off, sort_keys=True) == json.dumps(on, sort_keys=True)


class TestPreemptAB:
    @pytest.fixture(scope="class")
    def ab(self):
        return run_preempt_ab(0, quick=True)

    def test_gate_passes(self, ab):
        assert ab["ok"] is True
        for scheme, gate in ab["gate"].items():
            assert gate["reserve_rejected"] > 0, scheme
            assert gate["admits_more"], scheme
            assert gate["goodput_higher"], scheme

    def test_deterministic(self, ab):
        again = run_preempt_ab(0, quick=True)
        assert json.dumps(again, sort_keys=True) == json.dumps(ab, sort_keys=True)

    def test_arms_cover_swap_and_recompute(self, ab):
        arms = {e["policy"] for e in ab["arms"]}
        assert arms == {"reserve", "preempt-swap", "preempt-recompute"}


class TestFriendlyErrors:
    def test_missing_baseline_names_path_and_regen_command(self, tmp_path):
        path = str(tmp_path / "missing.json")
        with pytest.raises(SystemExit) as exc:
            load_baseline(path)
        msg = str(exc.value)
        assert path in msg
        assert "repro serve" in msg

    def test_corrupt_baseline_names_path(self, tmp_path):
        path = str(tmp_path / "corrupt.json")
        with open(path, "w") as f:
            f.write("{not json")
        with pytest.raises(SystemExit) as exc:
            load_baseline(path)
        assert path in str(exc.value)

    def test_wrong_schema_names_path(self, tmp_path):
        path = str(tmp_path / "other.json")
        with open(path, "w") as f:
            json.dump({"report": "something-else"}, f)
        with pytest.raises(SystemExit) as exc:
            load_baseline(path)
        assert path in str(exc.value)

    def test_cli_compare_missing_baseline_is_friendly(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "nope.json")
        with pytest.raises(SystemExit) as exc:
            main([
                "serve", "--quick", "--seed", "0", "--requests", "4",
                "--compare", missing,
            ])
        msg = str(exc.value)
        assert missing in msg and "repro serve" in msg
        capsys.readouterr()

    def test_cli_chaos_unknown_scheme_is_friendly(self, capsys):
        from repro.cli import main

        rc = main(["chaos", "--serve", "--quick", "--scheme", "hybrid"])
        assert rc == 2
        assert "unknown serving chaos scheme" in capsys.readouterr().out


class TestChaosCLI:
    def test_chaos_serve_writes_byte_identical_reports(self, tmp_path, capsys):
        from repro.cli import main

        out1 = str(tmp_path / "a.json")
        out2 = str(tmp_path / "b.json")
        argv = ["chaos", "--serve", "--quick", "--seed", "0",
                "--scheme", "optimus", "--out"]
        assert main(argv + [out1]) == 0
        assert main(argv + [out2]) == 0
        with open(out1) as f1, open(out2) as f2:
            assert f1.read() == f2.read()
        with open(out1) as f:
            doc = json.load(f)
        assert doc["report"] == "repro-serve-chaos-v1"
        assert doc["ok"] is True
        capsys.readouterr()


class TestTrafficDeadlines:
    def test_generator_stamps_deadline_without_new_draws(self):
        plain = TrafficGenerator(0, CFG.vocab_size).generate()
        stamped = TrafficGenerator(0, CFG.vocab_size, deadline_s=0.5).generate()
        assert [r.deadline_s for r in stamped] == [0.5] * len(stamped)
        assert [
            (r.rid, r.arrival, r.prompt, r.max_new) for r in plain
        ] == [(r.rid, r.arrival, r.prompt, r.max_new) for r in stamped]

    def test_describe_mentions_deadline_only_when_set(self):
        assert "deadline_s" not in TrafficGenerator(0, CFG.vocab_size).describe()
        doc = TrafficGenerator(0, CFG.vocab_size, deadline_s=0.5).describe()
        assert doc["deadline_s"] == 0.5
