"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import tiny_config
from repro.mesh.mesh import Mesh
from repro.nn.init import init_transformer_params
from repro.runtime.simulator import Simulator


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def cfg():
    """Small config compatible with q ∈ {1, 2, 3} and p ∈ {1, 2, 3, 6}."""
    return tiny_config(num_layers=2)


@pytest.fixture
def params(cfg):
    return init_transformer_params(cfg, seed=1)


@pytest.fixture
def batch(cfg, rng):
    b = 6
    ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
    return ids, labels


def make_mesh(q: int, backend: str = "numpy", **kw):
    sim = Simulator.for_mesh(q=q, backend=backend, **kw)
    return Mesh(sim, q)


@pytest.fixture
def mesh2():
    return make_mesh(2)


@pytest.fixture
def mesh3():
    return make_mesh(3)
