"""Functional ops: forward values and analytic gradients vs finite diffs."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backend.shape_array import ShapeArray
from repro.nn.gradcheck import check_grad
from repro.reference import functional as F


class TestGelu:
    def test_known_values(self):
        assert F.gelu(np.array(0.0)) == 0.0
        np.testing.assert_allclose(F.gelu(np.array(100.0)), 100.0)  # identity tail
        np.testing.assert_allclose(F.gelu(np.array(-100.0)), 0.0, atol=1e-12)

    def test_gradient(self, rng):
        x = rng.normal(size=(3, 5))
        dy = rng.normal(size=(3, 5))

        def f(x_):
            return float(np.sum(F.gelu(x_) * dy))

        check_grad(f, x, F.gelu_bwd(x, dy))

    def test_dryrun(self):
        out = F.gelu(ShapeArray((3, 5)))
        assert out.shape == (3, 5)
        assert F.gelu_bwd(ShapeArray((3, 5)), ShapeArray((3, 5))).shape == (3, 5)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        y = F.softmax(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(y.sum(axis=-1), 1.0)
        assert (y > 0).all()

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), rtol=1e-12)

    def test_overflow_safe(self):
        y = F.softmax(np.array([[1e4, 1e4 - 1.0]]))
        assert np.isfinite(y).all()

    def test_gradient(self, rng):
        x = rng.normal(size=(2, 6))
        dy = rng.normal(size=(2, 6))

        def f(x_):
            return float(np.sum(F.softmax(x_) * dy))

        check_grad(f, x, F.softmax_bwd(F.softmax(x), dy))

    def test_batched(self, rng):
        x = rng.normal(size=(2, 3, 4, 5))
        np.testing.assert_allclose(F.softmax(x).sum(axis=-1), 1.0)


class TestLayerNorm:
    def test_normalizes(self, rng):
        x = rng.normal(size=(6, 8)) * 3 + 5
        out, x_hat, inv_std = F.layernorm_fwd(x, np.ones(8), np.zeros(8), eps=0.0)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.var(axis=-1), 1.0, rtol=1e-9)
        np.testing.assert_array_equal(out, x_hat)

    def test_affine(self, rng):
        x = rng.normal(size=(4, 6))
        gamma, beta = rng.normal(size=6), rng.normal(size=6)
        out, x_hat, _ = F.layernorm_fwd(x, gamma, beta)
        np.testing.assert_allclose(out, x_hat * gamma + beta)

    def test_input_gradient(self, rng):
        x = rng.normal(size=(3, 6))
        gamma, beta = rng.normal(size=6), rng.normal(size=6)
        dy = rng.normal(size=(3, 6))
        _, x_hat, inv_std = F.layernorm_fwd(x, gamma, beta)
        dx, _, _ = F.layernorm_bwd(dy, x_hat, inv_std, gamma)

        def f(x_):
            out, _, _ = F.layernorm_fwd(x_, gamma, beta)
            return float(np.sum(out * dy))

        check_grad(f, x, dx, rtol=1e-4, atol=1e-6)

    def test_param_gradients(self, rng):
        x = rng.normal(size=(3, 6))
        gamma, beta = rng.normal(size=6), rng.normal(size=6)
        dy = rng.normal(size=(3, 6))
        _, x_hat, inv_std = F.layernorm_fwd(x, gamma, beta)
        _, dgamma, dbeta = F.layernorm_bwd(dy, x_hat, inv_std, gamma)

        def fg(g_):
            out, _, _ = F.layernorm_fwd(x, g_, beta)
            return float(np.sum(out * dy))

        def fb(b_):
            out, _, _ = F.layernorm_fwd(x, gamma, b_)
            return float(np.sum(out * dy))

        check_grad(fg, gamma, dgamma, rtol=1e-4)
        check_grad(fb, beta, dbeta, rtol=1e-4)


class TestCrossEntropy:
    def test_matches_log_softmax(self, rng):
        logits = rng.normal(size=(5, 7))
        labels = rng.integers(0, 7, size=5)
        loss, probs = F.cross_entropy_fwd(logits, labels)
        expected = -np.log(F.softmax(logits)[np.arange(5), labels])
        np.testing.assert_allclose(loss, expected, rtol=1e-12)
        np.testing.assert_allclose(probs, F.softmax(logits), rtol=1e-12)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((1, 4), -50.0)
        logits[0, 2] = 50.0
        loss, _ = F.cross_entropy_fwd(logits, np.array([2]))
        assert loss[0] < 1e-8

    def test_gradient(self, rng):
        logits = rng.normal(size=(4, 6))
        labels = rng.integers(0, 6, size=4)
        dloss = rng.normal(size=4)
        _, probs = F.cross_entropy_fwd(logits, labels)
        grad = F.cross_entropy_bwd(probs, labels, dloss)

        def f(x_):
            loss, _ = F.cross_entropy_fwd(x_, labels)
            return float(np.sum(loss * dloss))

        check_grad(f, logits, grad, rtol=1e-5)

    def test_grad_rows_sum_to_zero(self, rng):
        """softmax-CE gradient rows sum to zero (probability simplex)."""
        logits = rng.normal(size=(5, 9))
        labels = rng.integers(0, 9, size=5)
        _, probs = F.cross_entropy_fwd(logits, labels)
        grad = F.cross_entropy_bwd(probs, labels, np.ones(5))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


@given(st.integers(1, 5), st.integers(2, 8), st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_softmax_simplex_property(rows, cols, seed):
    """softmax output is always a probability distribution."""
    rng = np.random.default_rng(seed)
    y = F.softmax(rng.normal(size=(rows, cols)) * 10)
    assert (y >= 0).all()
    np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-9)


@given(st.integers(2, 6), st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_layernorm_scale_invariance_property(h, seed):
    """LN(a·x) == LN(x) for any positive scale a (with eps → 0)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, h)) + rng.normal(size=(3, 1))
    # scale invariance only holds while eps stays negligible against the
    # row variance; a near-degenerate row (all entries almost equal) makes
    # eps/ (a²·var) visible at 1e-5 rtol, which is not what this property
    # is about (found by hypothesis at h=2, seed=92)
    assume(x.var(axis=-1).min() > 1e-3)
    g, b = np.ones(h), np.zeros(h)
    out1, _, _ = F.layernorm_fwd(x, g, b, eps=1e-12)
    out2, _, _ = F.layernorm_fwd(x * 7.5, g, b, eps=1e-12)
    np.testing.assert_allclose(out1, out2, rtol=1e-5, atol=1e-7)
