"""SUMMA algorithms 1–3 and the closed-set gradient identities (Eqs. 1–3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import BufferManager
from repro.core.summa import (
    grads_of_ab,
    grads_of_abt,
    grads_of_atb,
    summa_ab,
    summa_abt,
    summa_atb,
)
from repro.mesh import assemble_blocked_2d, distribute_blocked_2d, distribute_replicated
from tests.conftest import make_mesh


def _dist(mesh, a):
    return distribute_blocked_2d(mesh, a)


class TestForwardProducts:
    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_ab(self, q, rng):
        mesh = make_mesh(q)
        a, b = rng.normal(size=(4 * q, 6 * q)), rng.normal(size=(6 * q, 2 * q))
        c = assemble_blocked_2d(summa_ab(mesh, _dist(mesh, a), _dist(mesh, b)))
        np.testing.assert_allclose(c, a @ b, rtol=1e-12)

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_abt(self, q, rng):
        mesh = make_mesh(q)
        a, b = rng.normal(size=(4 * q, 6 * q)), rng.normal(size=(2 * q, 6 * q))
        c = assemble_blocked_2d(summa_abt(mesh, _dist(mesh, a), _dist(mesh, b)))
        np.testing.assert_allclose(c, a @ b.T, rtol=1e-12)

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_atb(self, q, rng):
        mesh = make_mesh(q)
        a, b = rng.normal(size=(6 * q, 4 * q)), rng.normal(size=(6 * q, 2 * q))
        c = assemble_blocked_2d(summa_atb(mesh, _dist(mesh, a), _dist(mesh, b)))
        np.testing.assert_allclose(c, a.T @ b, rtol=1e-12)

    def test_inner_dim_mismatch(self, rng):
        mesh = make_mesh(2)
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(4, 6))
        with pytest.raises(ValueError):
            summa_ab(mesh, _dist(mesh, a), _dist(mesh, b))
        with pytest.raises(ValueError):
            summa_abt(mesh, _dist(mesh, a), _dist(mesh, rng.normal(size=(4, 4))))
        with pytest.raises(ValueError):
            summa_atb(mesh, _dist(mesh, a), _dist(mesh, rng.normal(size=(6, 6))))

    def test_layout_enforced(self, rng):
        mesh = make_mesh(2)
        a = distribute_replicated(mesh, rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            summa_ab(mesh, a, _dist(mesh, rng.normal(size=(4, 4))))


class TestGradientIdentities:
    """Eqs. 1–3: backward of each product is a composition of the others."""

    def test_grads_of_ab(self, rng):
        mesh = make_mesh(2)
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(6, 8))
        dc = rng.normal(size=(4, 8))
        da, db = grads_of_ab(mesh, _dist(mesh, a), _dist(mesh, b), _dist(mesh, dc))
        np.testing.assert_allclose(assemble_blocked_2d(da), dc @ b.T, rtol=1e-12)
        np.testing.assert_allclose(assemble_blocked_2d(db), a.T @ dc, rtol=1e-12)

    def test_grads_of_abt(self, rng):
        mesh = make_mesh(2)
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(8, 6))
        dc = rng.normal(size=(4, 8))
        da, db = grads_of_abt(mesh, _dist(mesh, a), _dist(mesh, b), _dist(mesh, dc))
        np.testing.assert_allclose(assemble_blocked_2d(da), dc @ b, rtol=1e-12)
        np.testing.assert_allclose(assemble_blocked_2d(db), dc.T @ a, rtol=1e-12)

    def test_grads_of_atb(self, rng):
        mesh = make_mesh(2)
        a, b = rng.normal(size=(6, 4)), rng.normal(size=(6, 8))
        dc = rng.normal(size=(4, 8))
        da, db = grads_of_atb(mesh, _dist(mesh, a), _dist(mesh, b), _dist(mesh, dc))
        np.testing.assert_allclose(assemble_blocked_2d(da), b @ dc.T, rtol=1e-12)
        np.testing.assert_allclose(assemble_blocked_2d(db), a @ dc, rtol=1e-12)

    def test_grads_match_finite_differences(self, rng):
        """Chain-rule sanity: d/dA tr(Gᵀ·AB) = G·Bᵀ via SUMMA."""
        mesh = make_mesh(2)
        a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        g = rng.normal(size=(4, 4))

        def f(a_):
            return float(np.sum(g * (a_ @ b)))

        da, _ = grads_of_ab(mesh, _dist(mesh, a), _dist(mesh, b), _dist(mesh, g))
        eps = 1e-6
        num = np.zeros_like(a)
        for i in range(4):
            for j in range(4):
                ap, am = a.copy(), a.copy()
                ap[i, j] += eps
                am[i, j] -= eps
                num[i, j] = (f(ap) - f(am)) / (2 * eps)
        np.testing.assert_allclose(assemble_blocked_2d(da), num, rtol=1e-5)


class TestCostAccounting:
    def test_flops_charged_equal_total_gemm(self, rng):
        q = 2
        mesh = make_mesh(q)
        M, K, N = 4, 6, 8
        summa_ab(mesh, _dist(mesh, rng.normal(size=(M, K))), _dist(mesh, rng.normal(size=(K, N))))
        assert mesh.sim.total_flops() == pytest.approx(2.0 * M * K * N)

    def test_flops_balanced_across_devices(self, rng):
        mesh = make_mesh(2)
        summa_ab(mesh, _dist(mesh, rng.normal(size=(4, 4))), _dist(mesh, rng.normal(size=(4, 4))))
        fl = [d.flops for d in mesh.sim.devices]
        assert max(fl) == pytest.approx(min(fl))

    def test_comm_weighted_volume(self, rng):
        """Per device: q steps × log₂(q) × (A block + B block) bytes."""
        q = 4
        mesh = make_mesh(q)
        a = rng.normal(size=(8 * q, 4 * q))
        b = rng.normal(size=(4 * q, 8 * q))
        summa_ab(mesh, _dist(mesh, a), _dist(mesh, b))
        expected = q * np.log2(q) * (a.nbytes + b.nbytes) / (q * q)
        assert mesh.sim.device(0).weighted_comm_volume == pytest.approx(expected)

    def test_q1_has_no_comm(self, rng):
        mesh = make_mesh(1)
        summa_ab(mesh, _dist(mesh, rng.normal(size=(4, 4))), _dist(mesh, rng.normal(size=(4, 4))))
        assert mesh.sim.total_bytes_comm() == 0

    def test_workspace_charged_and_released(self, rng):
        mesh = make_mesh(2)
        buf = BufferManager(mesh.sim)
        summa_ab(
            mesh,
            _dist(mesh, rng.normal(size=(4, 4))),
            _dist(mesh, rng.normal(size=(4, 4))),
            buffers=buf,
        )
        assert buf.usage("workspace", 0) == 0  # all scratch released
        assert buf.capacity("workspace", 0) > 0  # arena retained
        assert mesh.sim.device(0).memory.by_tag["buffer:workspace"] > 0


class TestHotPathRegressions:
    """Minimal reproductions of accounting bugs found by the batched-vs-
    per-rank A/B diff (PR 7 satellite sweep)."""

    def test_q1_reduce_does_not_leak_pool_buffers(self, rng):
        """q=1: the size-1 reduce is zero-copy, so a pooled partial became
        the output shard and was never released — every abt/atb call leaked
        one pool acquisition and pooling was permanently defeated."""
        from repro.core import summa as summa_mod

        mesh = make_mesh(1)
        a = _dist(mesh, rng.normal(size=(4, 4)))
        with summa_mod.optimizations(pool=True):
            for _ in range(3):
                summa_abt(mesh, a, a)
                summa_atb(mesh, a, a)
        stats = summa_mod._pool_of(mesh.sim).stats()
        assert stats["live"] == 0, f"pooled buffers leaked into outputs: {stats}"

    def test_plan_cache_keyed_on_per_shard_dtypes(self, rng):
        """Mixed per-shard dtypes used to collide with the uniform-dtype
        plan (the key looked only at the first shard), silently reusing its
        out-dtype and f32-sized scratch/byte charges for f64 blocks."""
        from repro.core import summa as summa_mod
        from repro.mesh.dtensor import DTensor
        from repro.mesh.layouts import BLOCKED_2D

        def run(prime_first):
            mesh = make_mesh(2)
            # mixed per-shard dtypes violate the strict layout contract; the
            # plan cache must still key on them when checking is off
            mesh.sim.strict_invariants = False
            a32 = _dist(mesh, rng.normal(size=(8, 8)).astype(np.float32))
            b32 = _dist(mesh, rng.normal(size=(8, 8)).astype(np.float32))
            mixed = {
                r: (s if r == mesh.ranks[0] else s.astype(np.float64))
                for r, s in a32.shards.items()
            }
            amix = DTensor(mesh, BLOCKED_2D, mixed, (8, 8))
            with summa_mod.optimizations(plan_cache=prime_first):
                if prime_first:  # prime the cache with the all-f32 plan
                    summa_ab(mesh, a32, b32)
                    base = {r: mesh.sim.device(r).bytes_comm for r in mesh.ranks}
                else:
                    base = {r: 0.0 for r in mesh.ranks}
                c = summa_ab(mesh, amix, b32)
            dtypes = sorted({s.dtype.name for s in c.shards.values()})
            bytes_comm = {
                r: mesh.sim.device(r).bytes_comm - base[r] for r in mesh.ranks
            }
            return dtypes, bytes_comm

        cached_dtypes, cached_bytes = run(prime_first=True)
        fresh_dtypes, fresh_bytes = run(prime_first=False)
        assert cached_dtypes == fresh_dtypes
        assert cached_bytes == fresh_bytes


@given(
    st.integers(1, 3),
    st.integers(1, 3),
    st.integers(1, 3),
    st.integers(1, 3),
    st.sampled_from(["ab", "abt", "atb"]),
)
@settings(max_examples=60, deadline=None)
def test_summa_matches_numpy_property(q, mb, kb, nb, which):
    """All three products agree with numpy for random divisible shapes."""
    rng = np.random.default_rng(hash((q, mb, kb, nb, which)) % 2**32)
    mesh = make_mesh(q)
    M, K, N = mb * q, kb * q, nb * q
    if which == "ab":
        a, b = rng.normal(size=(M, K)), rng.normal(size=(K, N))
        out = summa_ab(mesh, _dist(mesh, a), _dist(mesh, b))
        expected = a @ b
    elif which == "abt":
        a, b = rng.normal(size=(M, K)), rng.normal(size=(N, K))
        out = summa_abt(mesh, _dist(mesh, a), _dist(mesh, b))
        expected = a @ b.T
    else:
        a, b = rng.normal(size=(K, M)), rng.normal(size=(K, N))
        out = summa_atb(mesh, _dist(mesh, a), _dist(mesh, b))
        expected = a.T @ b
    np.testing.assert_allclose(assemble_blocked_2d(out), expected, rtol=1e-10, atol=1e-12)
