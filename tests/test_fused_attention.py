"""Operation fusion for attention (paper §6): chunked online-softmax
attention must be numerically identical to the materialized version while
never allocating the [b, n, s, s] score tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.shape_array import ShapeArray
from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.mesh import assemble_blocked_2d
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.partition import assemble_row0_cols
from repro.nn import init_transformer_params
from repro.reference.attention import (
    attention_bwd,
    attention_fwd,
    fused_attention_bwd,
    fused_attention_flops,
    fused_attention_fwd,
)
from repro.runtime import Simulator
from tests.conftest import make_mesh


def _qkv(rng, b=2, n=3, s=16, d=4):
    return tuple(rng.normal(size=(b, n, s, d)) for _ in range(3))


class TestFusedKernels:
    @pytest.mark.parametrize("chunk", [1, 3, 5, 16, 64])
    def test_forward_matches_unfused(self, rng, chunk):
        q, k, v = _qkv(rng)
        out, _ = attention_fwd(q, k, v)
        fout, _, _ = fused_attention_fwd(q, k, v, chunk=chunk)
        np.testing.assert_allclose(fout, out, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("chunk", [1, 5, 7, 16])
    def test_backward_matches_unfused(self, rng, chunk):
        q, k, v = _qkv(rng)
        d_out = rng.normal(size=q.shape)
        out, probs = attention_fwd(q, k, v)
        dq, dk, dv = attention_bwd(q, k, v, probs, d_out)
        fout, m, l = fused_attention_fwd(q, k, v, chunk=chunk)
        fdq, fdk, fdv = fused_attention_bwd(q, k, v, fout, m, l, d_out, chunk=chunk)
        np.testing.assert_allclose(fdq, dq, rtol=1e-10, atol=1e-13)
        np.testing.assert_allclose(fdk, dk, rtol=1e-10, atol=1e-13)
        np.testing.assert_allclose(fdv, dv, rtol=1e-10, atol=1e-13)

    def test_numerically_stable_for_large_scores(self, rng):
        q, k, v = (x * 40 for x in _qkv(rng))
        fout, _, _ = fused_attention_fwd(q, k, v, chunk=4)
        assert np.isfinite(np.asarray(fout)).all()
        out, _ = attention_fwd(q, k, v)
        np.testing.assert_allclose(fout, out, rtol=1e-10)

    def test_dryrun(self):
        s = ShapeArray((2, 3, 16, 4), "float32")
        fout, m, l = fused_attention_fwd(s, s, s, chunk=4)
        assert fout.shape == (2, 3, 16, 4)
        assert m.shape == (2, 3, 16, 1)
        grads = fused_attention_bwd(s, s, s, fout, m, l, s, chunk=4)
        assert all(g.shape == (2, 3, 16, 4) for g in grads)

    def test_flops_model(self):
        assert fused_attention_flops(2, 3, 16, 4, backward=False) == pytest.approx(
            2 * 2.0 * 2 * 3 * 16 * 16 * 4
        )
        assert fused_attention_flops(2, 3, 16, 4, backward=True) == pytest.approx(
            5 * 2.0 * 2 * 3 * 16 * 16 * 4
        )

    @given(st.integers(1, 20), st.integers(1, 4), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_any_chunk_size_property(self, chunk, n, seed):
        rng = np.random.default_rng(seed)
        q, k, v = tuple(rng.normal(size=(1, n, 9, 3)) for _ in range(3))
        out, _ = attention_fwd(q, k, v)
        fout, _, _ = fused_attention_fwd(q, k, v, chunk=chunk)
        np.testing.assert_allclose(fout, out, rtol=1e-10, atol=1e-13)


class TestFusedInModels:
    def _assemble(self, p):
        if p.data.layout == BLOCKED_2D:
            return assemble_blocked_2d(p.grad)
        if p.data.layout.kind == "sharded_1d":
            from repro.mesh.partition import assemble_sharded_1d

            return assemble_sharded_1d(p.grad)
        if p.data.layout.kind == "row0_cols":
            return assemble_row0_cols(p.grad)
        return p.grad.local(next(iter(p.grad.shards)))

    def test_optimus_fused_equals_unfused(self, cfg, batch):
        ids, labels = batch
        results = {}
        for fused in (False, True):
            params = init_transformer_params(cfg, seed=1)
            model = OptimusModel(
                make_mesh(2), cfg, params, fused_attention=fused, attention_chunk=4
            )
            loss = model.forward(ids, labels)
            model.backward()
            results[fused] = (loss, {p.name: self._assemble(p) for p in model.parameters()})
        assert results[True][0] == pytest.approx(results[False][0], abs=1e-12)
        for name, g in results[True][1].items():
            np.testing.assert_allclose(g, results[False][1][name], rtol=1e-9, atol=1e-12)

    def test_megatron_fused_equals_unfused(self, cfg, batch):
        ids, labels = batch
        losses = {}
        for fused in (False, True):
            params = init_transformer_params(cfg, seed=1)
            model = MegatronModel(
                Simulator.for_flat(p=2), cfg, params,
                fused_attention=fused, attention_chunk=4,
            )
            losses[fused] = model.forward(ids, labels)
            model.backward()
        assert losses[True] == pytest.approx(losses[False], abs=1e-12)

    def test_fusion_reduces_attention_memory(self):
        """The §6 claim: no [b, n, s, s] allocation at score-heavy shapes."""
        from repro.config import ModelConfig

        cfg = ModelConfig(
            vocab_size=51200, hidden_size=256, num_heads=16, num_layers=2,
            seq_len=512,  # s ≫ h/n: scores dominate activations
        )
        peaks = {}
        for fused in (False, True):
            sim = Simulator.for_mesh(q=2, backend="shape")
            from repro.mesh import Mesh

            params = init_transformer_params(
                cfg, backend="shape", dtype="float32", include_embedding=False
            )
            model = OptimusModel(
                Mesh(sim, 2), cfg, params, stem_only=True,
                fused_attention=fused, attention_chunk=64,
            )
            model.stem_forward(16)
            model.stem_backward()
            peaks[fused] = sim.peak_memory()
        assert peaks[True] < 0.6 * peaks[False]

    def test_fusion_costs_one_extra_recompute_gemm(self, cfg, batch):
        ids, labels = batch
        flops = {}
        for fused in (False, True):
            params = init_transformer_params(cfg, seed=1)
            model = OptimusModel(
                make_mesh(2), cfg, params, fused_attention=fused, attention_chunk=4
            )
            model.forward(ids, labels)
            model.backward()
            flops[fused] = model.mesh.sim.device(0).flops_gemm
        assert flops[True] > flops[False]  # the recompute GEMMs
