"""Collectives: data semantics, clock synchronization, cost charging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.shape_array import ShapeArray
from repro.comm import ProcessGroup, collectives as coll
from repro.runtime import Simulator


def _group(p=4, **kw):
    sim = Simulator.for_flat(p=p, **kw)
    return ProcessGroup(sim, range(p), kind="test")


def _shards(group, rng, shape=(3, 4)):
    return {r: rng.normal(size=shape) for r in group.ranks}


class TestDataSemantics:
    def test_broadcast(self, rng):
        g = _group()
        src = rng.normal(size=(2, 5))
        out = coll.broadcast(g, src, root=1)
        for r in g.ranks:
            np.testing.assert_array_equal(out[r], src)
        # non-root buffers must be copies, not aliases
        out[0][0, 0] = 123.0
        assert src[0, 0] != 123.0

    def test_broadcast_bad_root(self):
        g = _group()
        with pytest.raises(ValueError):
            coll.broadcast(g, np.zeros(3), root=9)

    def test_reduce_sum(self, rng):
        g = _group()
        sh = _shards(g, rng)
        out = coll.reduce(g, sh, root=2)
        np.testing.assert_allclose(out[2], sum(sh.values()))
        assert set(out) == {2}

    def test_reduce_max(self, rng):
        g = _group()
        sh = _shards(g, rng)
        out = coll.reduce(g, sh, root=0, op="max")
        np.testing.assert_allclose(out[0], np.maximum.reduce(list(sh.values())))

    def test_reduce_bad_op(self, rng):
        g = _group()
        with pytest.raises(
            ValueError,
            match=r"unsupported reduction op 'prod': valid ops are \['sum', 'max'\]",
        ):
            coll.reduce(g, _shards(g, rng), root=0, op="prod")

    def test_bad_op_rejected_on_size1_group(self, rng):
        # size-1 groups take the zero-copy early return and never combine;
        # the op must still be validated up front
        g = _group(p=1)
        sh = {0: rng.normal(size=(2, 2))}
        with pytest.raises(ValueError, match="unsupported reduction op 'prod'"):
            coll.reduce(g, sh, root=0, op="prod")
        with pytest.raises(ValueError, match="unsupported reduction op 'mean'"):
            coll.all_reduce(g, sh, op="mean")

    def test_all_reduce(self, rng):
        g = _group()
        sh = _shards(g, rng)
        out = coll.all_reduce(g, sh)
        expected = sum(sh.values())
        for r in g.ranks:
            np.testing.assert_allclose(out[r], expected)

    def test_all_reduce_max(self, rng):
        g = _group()
        sh = _shards(g, rng)
        out = coll.all_reduce(g, sh, op="max")
        np.testing.assert_allclose(out[3], np.maximum.reduce(list(sh.values())))

    def test_all_gather(self, rng):
        g = _group()
        sh = {r: rng.normal(size=(2, 3)) for r in g.ranks}
        out = coll.all_gather(g, sh, axis=0)
        expected = np.concatenate([sh[r] for r in g.ranks], axis=0)
        for r in g.ranks:
            np.testing.assert_array_equal(out[r], expected)

    def test_all_gather_uneven(self, rng):
        g = _group(p=2)
        sh = {0: rng.normal(size=(2, 3)), 1: rng.normal(size=(5, 3))}
        out = coll.all_gather(g, sh, axis=0)
        assert out[0].shape == (7, 3)

    def test_reduce_scatter(self, rng):
        g = _group()
        sh = _shards(g, rng, shape=(8, 3))
        out = coll.reduce_scatter(g, sh, axis=0)
        total = sum(sh.values())
        for i, r in enumerate(g.ranks):
            np.testing.assert_allclose(out[r], total[2 * i : 2 * i + 2])

    def test_reduce_scatter_indivisible(self, rng):
        g = _group()
        with pytest.raises(ValueError):
            coll.reduce_scatter(g, _shards(g, rng, shape=(7, 3)), axis=0)

    def test_scatter_gather_roundtrip(self, rng):
        g = _group()
        full = rng.normal(size=(8, 3))
        pieces = coll.scatter(g, full, root=0, axis=0)
        back = coll.gather(g, pieces, root=0, axis=0)
        np.testing.assert_array_equal(back[0], full)

    def test_shard_validation(self, rng):
        g = _group()
        with pytest.raises(ValueError):
            coll.all_reduce(g, {0: np.zeros(3)})  # missing ranks
        bad = _shards(g, rng)
        bad[0] = np.zeros((9, 9))
        with pytest.raises(ValueError):
            coll.all_reduce(g, bad)

    def test_single_rank_group_is_free(self, rng):
        g = _group(p=1)
        out = coll.all_reduce(g, {0: rng.normal(size=(3,))})
        assert g.sim.elapsed() == 0.0
        assert 0 in out


class TestClockAndCost:
    def test_collective_synchronizes(self, rng):
        g = _group()
        g.sim.device(0).clock = 1.0
        coll.all_reduce(g, _shards(g, rng))
        clocks = {g.sim.device(r).clock for r in g.ranks}
        assert len(clocks) == 1
        assert clocks.pop() > 1.0

    def test_larger_payload_costs_more(self, rng):
        g1, g2 = _group(), _group()
        coll.all_reduce(g1, {r: np.zeros(10) for r in g1.ranks})
        coll.all_reduce(g2, {r: np.zeros(10000) for r in g2.ranks})
        assert g2.sim.elapsed() > g1.sim.elapsed()

    def test_weighted_volume_matches_eq4_eq5(self):
        # broadcast: log2(g)·B ; all-reduce: 2(g−1)/g·B  (paper Eqs. 4–5)
        g = _group(p=4)
        buf = np.zeros(100, dtype=np.float64)  # 800 bytes
        coll.broadcast(g, buf, root=0)
        d = g.sim.device(0)
        assert d.weighted_comm_volume == pytest.approx(np.log2(4) * 800)
        before = d.weighted_comm_volume
        coll.all_reduce(g, {r: buf.copy() for r in g.ranks})
        assert d.weighted_comm_volume - before == pytest.approx(2 * 3 / 4 * 800)

    def test_scatter_charges_moved_fraction(self, rng):
        """Regression: scatter charged full-buffer bytes but (g−1)/g time
        and weighted volume — the three must agree on the moved volume."""
        g = _group()
        full = rng.normal(size=(8, 4))
        coll.scatter(g, full, root=0, axis=0)
        moved = full.nbytes * 3 / 4
        for r in g.ranks:
            d = g.sim.device(r)
            assert d.bytes_comm == pytest.approx(moved)
            assert d.comm_time == pytest.approx(g.model.broadcast_time(moved))
            assert d.weighted_comm_volume == pytest.approx(
                g.model.broadcast_weighted_volume(moved)
            )

    def test_gather_charges_moved_fraction(self, rng):
        g = _group()
        sh = _shards(g, rng, shape=(2, 4))
        coll.gather(g, sh, root=1, axis=0)
        moved = sum(v.nbytes for v in sh.values()) * 3 / 4
        for r in g.ranks:
            d = g.sim.device(r)
            assert d.bytes_comm == pytest.approx(moved)
            assert d.comm_time == pytest.approx(g.model.reduce_time(moved))
            assert d.weighted_comm_volume == pytest.approx(
                g.model.reduce_weighted_volume(moved)
            )

    def test_tracer_records(self, rng):
        sim = Simulator.for_flat(p=2, trace=True)
        g = ProcessGroup(sim, range(2))
        coll.broadcast(g, rng.normal(size=(4,)), root=0)
        events = sim.tracer.of_kind("broadcast")
        assert len(events) == 1
        assert events[0].ranks == (0, 1)
        assert events[0].duration > 0

    def test_dryrun_shards(self):
        g = _group(p=4, backend="shape")
        sh = {r: ShapeArray((3, 4), "float32") for r in g.ranks}
        out = coll.all_reduce(g, sh)
        assert out[0].shape == (3, 4)
        assert g.sim.elapsed() > 0

    def test_barrier(self):
        g = _group()
        g.sim.device(2).clock = 3.0
        t = coll.barrier(g)
        assert t == 3.0
        assert all(g.sim.device(r).clock == 3.0 for r in g.ranks)


class TestGroupValidation:
    def test_duplicate_ranks(self):
        sim = Simulator.for_flat(p=4)
        with pytest.raises(ValueError):
            ProcessGroup(sim, [0, 0, 1])

    def test_out_of_range_rank(self):
        sim = Simulator.for_flat(p=2)
        with pytest.raises(ValueError):
            ProcessGroup(sim, [0, 5])

    def test_index_contains(self):
        sim = Simulator.for_flat(p=4)
        g = ProcessGroup(sim, [1, 3])
        assert g.size == 2
        assert g.index_of(3) == 1
        assert g.contains(1) and not g.contains(0)


class TestAlgebraicProperties:
    """Hypothesis: collectives respect the algebra of the underlying ops."""

    @given(st.integers(2, 6), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_all_reduce_equals_sum(self, p, n):
        rng = np.random.default_rng(p * 100 + n)
        sim = Simulator.for_flat(p=p)
        g = ProcessGroup(sim, range(p))
        sh = {r: rng.normal(size=(n,)) for r in g.ranks}
        out = coll.all_reduce(g, sh)
        np.testing.assert_allclose(out[0], sum(sh.values()), rtol=1e-12)

    @given(st.integers(2, 6), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_reduce_scatter_then_gather_equals_all_reduce(self, p, rows_per):
        rng = np.random.default_rng(p * 37 + rows_per)
        sim = Simulator.for_flat(p=p)
        g = ProcessGroup(sim, range(p))
        sh = {r: rng.normal(size=(p * rows_per, 3)) for r in g.ranks}
        rs = coll.reduce_scatter(g, {r: v.copy() for r, v in sh.items()}, axis=0)
        gathered = coll.all_gather(g, rs, axis=0)
        ar = coll.all_reduce(g, sh)
        np.testing.assert_allclose(gathered[0], ar[0], rtol=1e-12)
