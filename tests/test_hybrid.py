"""Hybrid data × tensor parallelism: exact equivalence with full-batch
training, replica consistency over optimizer steps, mesh offsets."""

import numpy as np
import pytest

from repro.backend.shape_array import ShapeArray
from repro.config import tiny_config
from repro.core import OptimusModel
from repro.hardware.specs import frontera_rtx
from repro.hybrid import DataParallel
from repro.mesh import Mesh, assemble_blocked_2d, distribute_blocked_2d
from repro.mesh.partition import assemble_any
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from repro.runtime import Simulator
from repro.training import SGD


def _sim(total_ranks, backend="numpy"):
    nodes = -(-total_ranks // 4)
    return Simulator(frontera_rtx(nodes), num_ranks=total_ranks, backend=backend)


class TestMeshOffsets:
    def test_offset_mesh_coordinates(self):
        sim = _sim(8)
        mesh = Mesh(sim, 2, rank_offset=4)
        assert list(mesh.ranks) == [4, 5, 6, 7]
        assert mesh.rank(1, 1) == 7
        assert mesh.coords(5) == (0, 1)
        with pytest.raises(ValueError):
            mesh.coords(3)

    def test_offset_mesh_out_of_range(self):
        sim = _sim(4)
        with pytest.raises(ValueError):
            Mesh(sim, 2, rank_offset=2)

    def test_offset_model_matches_reference(self, cfg, params, batch):
        """A full Optimus model on ranks [4, 8) — nothing may assume rank 0."""
        ids, labels = batch
        ref_loss = float(ReferenceTransformer(cfg, params).forward(ids, labels))
        sim = _sim(8)
        model = OptimusModel(Mesh(sim, 2, rank_offset=4), cfg, params)
        assert model.forward(ids, labels) == pytest.approx(ref_loss, abs=1e-10)
        model.backward()
        # ranks 0–3 untouched
        assert sim.device(0).flops == 0
        assert sim.device(5).flops > 0

    def test_offset_blocked_partition(self, rng):
        sim = _sim(8)
        mesh = Mesh(sim, 2, rank_offset=4)
        a = rng.normal(size=(4, 4))
        dt = distribute_blocked_2d(mesh, a)
        assert set(dt.shards) == {4, 5, 6, 7}
        np.testing.assert_array_equal(assemble_blocked_2d(dt), a)


class TestDataParallelEquivalence:
    @pytest.mark.parametrize("R,q", [(2, 1), (2, 2), (3, 1)])
    def test_loss_and_grads_match_full_batch(self, cfg, rng, R, q):
        b = 2 * R * max(q, 1)  # divisible by R replicas and by q per replica
        ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        params = init_transformer_params(cfg, seed=1)
        ref = ReferenceTransformer(cfg, params)
        ref_loss = float(ref.forward(ids, labels))
        ref_grads = ref.backward()

        dp = DataParallel(_sim(R * q * q), cfg,
                          init_transformer_params(cfg, seed=1), R, q)
        loss = dp.forward_backward(ids, labels)
        assert loss == pytest.approx(ref_loss, abs=1e-10)
        for r in range(R):
            for p in dp.replica(r).parameters():
                np.testing.assert_allclose(
                    assemble_any(p.grad), ref_grads[p.name],
                    rtol=1e-8, atol=1e-11, err_msg=f"replica {r} {p.name}",
                )

    def test_training_keeps_replicas_identical(self, cfg, rng):
        ids = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        dp = DataParallel(_sim(8), cfg, init_transformer_params(cfg, seed=1), 2, 2)
        opt = SGD(dp.parameters(), lr=0.1)
        for _ in range(3):
            opt.zero_grad()
            dp.forward_backward(ids, labels)
            opt.step()
        w0 = assemble_any(dp.replica(0).named_parameters()["layer0.mlp.w1"].data)
        w1 = assemble_any(dp.replica(1).named_parameters()["layer0.mlp.w1"].data)
        np.testing.assert_array_equal(w0, w1)

    def test_training_matches_serial(self, cfg, rng):
        from repro.training import SerialSGD

        ids = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        params_ref = init_transformer_params(cfg, seed=1)
        ref = ReferenceTransformer(cfg, params_ref)
        sopt = SerialSGD(params_ref, lr=0.1)
        dp = DataParallel(_sim(8), cfg, init_transformer_params(cfg, seed=1), 2, 2)
        dopt = SGD(dp.parameters(), lr=0.1)
        for _ in range(3):
            _, grads = ref.loss_and_grads(ids, labels)
            sopt.step(grads)
            dopt.zero_grad()
            dp.forward_backward(ids, labels)
            dopt.step()
        w = assemble_any(dp.replica(0).named_parameters()["layer1.attn.wo"].data)
        np.testing.assert_allclose(w, params_ref["layer1.attn.wo"], rtol=1e-9)

    def test_single_replica_degenerates_to_plain_optimus(self, cfg, batch):
        ids, labels = batch
        params = init_transformer_params(cfg, seed=1)
        dp = DataParallel(_sim(4), cfg, params, 1, 2)
        plain_loss = OptimusModel(Mesh(_sim(4), 2), cfg,
                                  init_transformer_params(cfg, seed=1)).forward(ids, labels)
        assert dp.forward_backward(ids, labels) == pytest.approx(plain_loss, abs=1e-12)


class TestDataParallelBehaviour:
    def test_validation(self, cfg):
        params = init_transformer_params(cfg, seed=1)
        with pytest.raises(ValueError):
            DataParallel(_sim(4), cfg, params, 2, 2)  # needs 8 ranks
        with pytest.raises(ValueError):
            DataParallel(_sim(4), cfg, params, 0, 2)
        dp = DataParallel(_sim(8), cfg, params, 2, 2)
        ids = np.zeros((5, cfg.seq_len), dtype=np.int64)
        with pytest.raises(ValueError):
            dp.forward_backward(ids, ids)  # 5 % 2 != 0

    def test_grad_sync_traffic_exists(self, cfg, rng):
        """Data parallelism costs an extra all-reduce per parameter shard."""
        ids = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        labels = rng.integers(0, cfg.vocab_size, size=(8, cfg.seq_len))
        params = init_transformer_params(cfg, seed=1)
        sim = _sim(8)
        sim.tracer.enabled = True
        dp = DataParallel(sim, cfg, params, 2, 2)
        dp.forward_backward(ids, labels)
        dp_groups = [e for e in sim.tracer.events
                     if e.kind == "all_reduce" and e.label == "dp"]
        assert len(dp_groups) > 0

    def test_build_convenience_and_dryrun(self):
        cfg = tiny_config()
        dp = DataParallel.build(2, 2, cfg, backend="shape")
        ids = ShapeArray((8, cfg.seq_len), "int64")
        loss = dp.forward_backward(ids, ids)
        assert loss.shape == ()
        assert dp.sim.elapsed() > 0
