"""Hardware model: specs, arrangements (Fig. 8 placements), topology."""

import networkx as nx
import pytest

from repro.hardware import (
    RTX5000,
    ClusterTopology,
    bunched_arrangement,
    frontera_rtx,
    linear_arrangement,
    make_arrangement,
    naive_arrangement,
)
from repro.hardware.arrangement import Arrangement, _tile_dims
from repro.hardware.specs import DeviceSpec, LinkSpec


class TestSpecs:
    def test_device_effective_flops(self):
        d = DeviceSpec("x", 10e12, 0.5, 16 * 2**30)
        assert d.effective_flops == 5e12

    def test_link_alpha_beta(self):
        l = LinkSpec("x", bandwidth=10e9, latency=1e-6)
        assert l.beta == 1e-10
        assert l.alpha == 1e-6

    def test_cluster(self):
        c = frontera_rtx(4)
        assert c.num_devices == 16
        assert c.node_of(0) == 0
        assert c.node_of(7) == 1
        assert c.device is RTX5000
        with pytest.raises(ValueError):
            c.node_of(16)

    def test_rtx5000_matches_paper_testbed(self):
        assert RTX5000.memory_bytes == 16 * 1024**3


class TestArrangements:
    def test_linear(self):
        arr = linear_arrangement(frontera_rtx(2), 8)
        assert arr.rank_to_gpu == tuple(range(8))
        assert arr.node_of(5) == 1

    def test_linear_too_many(self):
        with pytest.raises(ValueError):
            linear_arrangement(frontera_rtx(1), 5)

    def test_naive_places_rows_on_nodes(self):
        arr = naive_arrangement(frontera_rtx(4), 4)
        # mesh row i = ranks 4i..4i+3 → node i: intra-node rows
        for i in range(4):
            row = [i * 4 + j for j in range(4)]
            assert len(arr.nodes_of(row)) == 1
        # columns span all four nodes
        col = [i * 4 + 0 for i in range(4)]
        assert len(arr.nodes_of(col)) == 4

    def test_bunched_tiles(self):
        arr = bunched_arrangement(frontera_rtx(4), 4)
        # Fig. 8b: every row and every column spans exactly 2 nodes, 2 per node
        for i in range(4):
            row = [i * 4 + j for j in range(4)]
            col = [j * 4 + i for j in range(4)]
            assert sorted(arr.nodes_of(row).values()) == [2, 2]
            assert sorted(arr.nodes_of(col).values()) == [2, 2]

    def test_bunched_injective(self):
        arr = bunched_arrangement(frontera_rtx(16), 8)
        assert len(set(arr.rank_to_gpu)) == 64

    def test_bunched_single_node(self):
        arr = bunched_arrangement(frontera_rtx(1), 2)
        assert arr.rank_to_gpu == (0, 1, 2, 3)

    def test_tile_dims(self):
        assert _tile_dims(4, 4) == (2, 2)
        assert _tile_dims(8, 4) == (2, 2)
        assert _tile_dims(6, 4) == (2, 2)
        with pytest.raises(ValueError):
            _tile_dims(3, 4)  # 2x2 tiles do not divide a 3x3 mesh

    def test_make_arrangement_fallback(self):
        # q=3 with 4-GPU nodes has no square tiling → falls back to naive
        arr = make_arrangement(frontera_rtx(3), 3, "bunched")
        assert arr.name == "naive"
        with pytest.raises(ValueError):
            make_arrangement(frontera_rtx(3), 3, "bogus")

    def test_duplicate_gpu_rejected(self):
        with pytest.raises(ValueError):
            Arrangement("bad", frontera_rtx(1), (0, 0, 1, 2))

    def test_spans_nodes(self):
        arr = linear_arrangement(frontera_rtx(2), 8)
        assert not arr.spans_nodes([0, 1, 2, 3])
        assert arr.spans_nodes([3, 4])


class TestTopology:
    def test_graph_structure(self):
        topo = ClusterTopology(frontera_rtx(2))
        g = topo.graph
        assert g.number_of_nodes() == 1 + 2 + 8  # switch + hosts + gpus
        assert nx.is_connected(g)

    def test_paths(self):
        topo = ClusterTopology(frontera_rtx(2))
        assert len(topo.path(0, 1)) == 3  # gpu-host-gpu
        assert len(topo.path(0, 4)) == 5  # gpu-host-switch-host-gpu

    def test_p2p_time(self):
        topo = ClusterTopology(frontera_rtx(2))
        assert topo.p2p_time(0, 0, 1000) == 0.0
        intra = topo.p2p_time(0, 1, 10**6)
        inter = topo.p2p_time(0, 4, 10**6)
        assert inter > intra > 0

    def test_group_profile(self):
        topo = ClusterTopology(frontera_rtx(4))
        arr = naive_arrangement(topo.cluster, 4)
        prof = topo.group_profile([0, 4, 8, 12], arr)
        assert prof.nodes_spanned == 4
        assert prof.max_ranks_per_node == 1
        assert not prof.is_intra_node
        prof2 = topo.group_profile([0, 1, 2, 3], arr)
        assert prof2.is_intra_node

    def test_crowding_naive_vs_bunched(self):
        cl = frontera_rtx(4)
        topo = ClusterTopology(cl)
        cols = [[i * 4 + j for i in range(4)] for j in range(4)]
        assert topo.crowding(cols, naive_arrangement(cl, 4)) == 4
        assert topo.crowding(cols, bunched_arrangement(cl, 4)) == 2

    def test_crowding_intra_groups_do_not_count(self):
        cl = frontera_rtx(4)
        topo = ClusterTopology(cl)
        rows = [[i * 4 + j for j in range(4)] for i in range(4)]
        # naive rows are intra-node: no NIC traffic at all
        assert topo.crowding(rows, naive_arrangement(cl, 4)) == 1
