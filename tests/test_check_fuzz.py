"""The seeded shape-fuzzing equivalence runner."""

import numpy as np

from repro.check.fuzz import TOLERANCES, TrialSpec, draw_spec, run_check, run_trial


class TestDrawing:
    def test_specs_satisfy_both_schemes_constraints(self):
        rng = np.random.default_rng(123)
        for t in range(50):
            s = draw_spec(rng, trial=t)
            assert s.batch % s.q == 0
            assert s.hidden % s.q == 0
            assert s.heads % s.q == 0
            assert s.vocab % s.q == 0
            assert s.heads % s.p == 0
            assert s.vocab % s.p == 0
            assert s.dtype in TOLERANCES
            if s.optimizer == "adam":
                assert s.dtype == "float64"  # see draw_spec: ε-amplification

    def test_drawing_is_seed_deterministic(self):
        a = draw_spec(np.random.default_rng(5), trial=0)
        b = draw_spec(np.random.default_rng(5), trial=0)
        assert a == b


class TestTrials:
    def _spec(self, **kw):
        base = dict(
            q=2, p=2, batch=2, seq=4, heads=2, head_dim=4, layers=1,
            vocab=16, dtype="float64", optimizer="sgd", lr=0.05,
            momentum=0.9, weight_decay=0.01, param_seed=1, data_seed=2,
        )
        base.update(kw)
        return TrialSpec(**base)

    def test_trial_passes_with_full_harness(self):
        result = run_trial(self._spec(), strict=True, contracts=True)
        assert result.passed, result.failures
        assert result.max_grad_diff < 1e-12
        assert result.max_param_diff < 1e-12

    def test_adam_trial_passes(self):
        result = run_trial(
            self._spec(optimizer="adam", lr=1e-3, momentum=0.0), strict=True,
            contracts=True,
        )
        assert result.passed, result.failures

    def test_run_check_smoke(self):
        lines = []
        assert run_check(seed=0, trials=1, printer=lines.append)
        assert any("all trials passed" in ln for ln in lines)
