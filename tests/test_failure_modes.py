"""Failure injection and misuse: the library must fail loudly and leave
diagnosable state, never compute silently wrong results."""

import numpy as np
import pytest

from repro.backend.shape_array import ShapeArray
from repro.config import tiny_config
from repro.core import OptimusModel
from repro.core.summa import summa_ab
from repro.megatron import MegatronModel
from repro.mesh import Mesh, distribute_blocked_2d
from repro.nn import init_transformer_params
from repro.runtime import OutOfDeviceMemory, Simulator
from tests.conftest import make_mesh


class TestOutOfMemoryInjection:
    def test_oom_raised_mid_model_run(self, cfg, batch):
        """Strict capacity: a too-large run dies with a diagnosable OOM."""
        ids, labels = batch
        sim = Simulator.for_mesh(q=2, strict_memory=True)
        # shrink the budget far below what the model needs
        for d in sim.devices:
            d.memory.capacity = 64 * 1024
        params = init_transformer_params(cfg, seed=1)
        with pytest.raises(OutOfDeviceMemory) as ei:
            model = OptimusModel(Mesh(sim, 2), cfg, params)
            model.forward(ids, labels)
        err = ei.value
        assert 0 <= err.rank < 4
        assert err.requested > 0
        assert err.capacity == 64 * 1024
        assert "OOM" in str(err)

    def test_oom_identifies_the_binding_rank(self):
        sim = Simulator.for_flat(p=3, strict_memory=True)
        sim.device(1).memory.capacity = 10
        sim.device(1).memory.alloc(5)
        with pytest.raises(OutOfDeviceMemory) as ei:
            sim.device(1).memory.alloc(6)
        assert ei.value.rank == 1
        assert ei.value.current == 5

    def test_larger_batch_ooms_first(self, cfg):
        """The Fig. 9 mechanism, observed through the exception path."""
        budget = 256 * 1024
        outcomes = {}
        for b in (4, 32):
            sim = Simulator.for_mesh(q=2, strict_memory=True)
            for d in sim.devices:
                d.memory.capacity = budget
            params = init_transformer_params(cfg, seed=1)
            model = OptimusModel(Mesh(sim, 2), cfg, params)
            ids = np.zeros((b, cfg.seq_len), dtype=np.int64)
            try:
                model.forward(ids, ids)
                model.backward()
                outcomes[b] = "ok"
            except OutOfDeviceMemory:
                outcomes[b] = "oom"
        assert outcomes[4] == "ok"
        assert outcomes[32] == "oom"


class TestShapeAndLayoutMisuse:
    def test_summa_rejects_mismatched_global_dims(self, rng):
        mesh = make_mesh(2)
        a = distribute_blocked_2d(mesh, rng.normal(size=(4, 6)))
        b = distribute_blocked_2d(mesh, rng.normal(size=(8, 4)))
        with pytest.raises(ValueError, match="inner dims"):
            summa_ab(mesh, a, b)

    def test_dryrun_catches_invalid_config_shapes(self):
        """Shape propagation makes a dryrun a real validity check."""
        cfg = tiny_config()
        mesh = make_mesh(2, backend="shape")
        params = init_transformer_params(cfg, backend="shape")
        model = OptimusModel(mesh, cfg, params)
        bad_ids = ShapeArray((4, cfg.seq_len + 1), "int64")
        with pytest.raises(ValueError):
            model.forward(bad_ids, bad_ids)

    def test_double_backward_rejected(self, cfg, params, batch):
        ids, labels = batch
        model = OptimusModel(make_mesh(2), cfg, params)
        model.forward(ids, labels)
        model.backward()
        with pytest.raises(RuntimeError):
            model.backward()

    def test_megatron_heads_constraint_fails_fast(self, params, batch):
        """The §5.2 divisibility pain, surfaced as a construction-time error
        message naming the offending quantity."""
        cfg = tiny_config()  # 6 heads
        ids, labels = batch
        sim = Simulator.for_flat(p=4)
        model = MegatronModel(sim, cfg, params)
        with pytest.raises(ValueError, match="heads 6 % p=4"):
            model.forward(ids, labels)

    def test_grad_layout_mismatch_rejected(self, cfg, params, rng):
        from repro.core.param import DistParam
        from repro.mesh.partition import distribute_replicated

        mesh = make_mesh(2)
        p = DistParam("w", distribute_blocked_2d(mesh, rng.normal(size=(4, 4))))
        wrong = distribute_replicated(mesh, rng.normal(size=(4, 4)))
        with pytest.raises(ValueError, match="layout"):
            p.add_grad(wrong)


class TestStateAfterFailure:
    def test_allocator_state_survives_oom(self):
        """After an OOM the meter still balances — no corrupted accounting."""
        sim = Simulator.for_flat(p=1, strict_memory=True)
        m = sim.device(0).memory
        m.capacity = 100
        m.alloc(80, "a")
        with pytest.raises(OutOfDeviceMemory):
            m.alloc(30, "b")
        assert m.current == 80
        assert m.by_tag.get("b", 0) == 0
        m.free(80, "a")
        assert m.current == 0

    def test_model_reusable_after_validation_error(self, cfg, params, batch):
        ids, labels = batch
        model = OptimusModel(make_mesh(2), cfg, params)
        with pytest.raises(ValueError):
            model.forward(ids[:3], labels[:3])  # b=3 not divisible by q=2
        # a correct call afterwards still works
        assert np.isfinite(model.forward(ids, labels))
