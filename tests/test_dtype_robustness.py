"""Precision robustness: the distributed numerics at float32, and the
stability constructions (max-subtracted softmax/CE) under extreme inputs."""

import numpy as np
import pytest

from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.mesh import distribute_blocked_2d, distribute_row_blocked
from repro.mesh.partition import assemble_any
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from repro.runtime import Simulator
from tests.conftest import make_mesh


class TestFloat32Training:
    def test_optimus_float32_matches_reference_float32(self, cfg, batch):
        ids, labels = batch
        params32 = init_transformer_params(cfg, seed=1, dtype="float32")
        ref_loss = float(ReferenceTransformer(cfg, params32).forward(ids, labels))
        model = OptimusModel(make_mesh(2), cfg, params32)
        loss = model.forward(ids, labels)
        # float32: distributed reduction order may differ in the last ulps
        assert loss == pytest.approx(ref_loss, rel=1e-5)
        model.backward()
        for p in model.parameters():
            g = np.asarray(assemble_any(p.grad))
            assert np.isfinite(g).all(), p.name
            assert g.dtype == np.float32, p.name

    def test_float32_close_to_float64(self, cfg, batch):
        """Same seed: the two precisions agree to float32 resolution."""
        ids, labels = batch
        losses = {}
        for dtype in ("float32", "float64"):
            params = init_transformer_params(cfg, seed=1, dtype=dtype)
            losses[dtype] = float(ReferenceTransformer(cfg, params).forward(ids, labels))
        assert losses["float32"] == pytest.approx(losses["float64"], rel=1e-4)

    def test_megatron_float32(self, cfg, batch):
        ids, labels = batch
        params32 = init_transformer_params(cfg, seed=1, dtype="float32")
        model = MegatronModel(Simulator.for_flat(p=3), cfg, params32)
        loss = model.forward(ids, labels)
        assert np.isfinite(loss)
        model.backward()


class TestNumericalStability:
    def test_distributed_ce_with_huge_logits(self, cfg, rng):
        """The row-all-reduced max subtraction must keep CE finite even when
        raw logits would overflow exp()."""
        from repro.core.embedding import Embedding2D, LMHead2D
        from repro.core.loss import CrossEntropy2D

        mesh = make_mesh(2)
        table = rng.normal(size=(cfg.vocab_size, cfg.hidden_size)) * 60.0
        emb = Embedding2D(mesh, cfg, table)
        head = LMHead2D(mesh, emb)
        ce = CrossEntropy2D(mesh)
        b = 4
        x = rng.normal(size=(b * cfg.seq_len, cfg.hidden_size)) * 60.0
        logits = head.forward(distribute_blocked_2d(mesh, x))
        labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
        loss = ce.forward(logits, distribute_row_blocked(mesh, labels))
        assert np.isfinite(loss)
        dlogits = ce.backward()
        assert np.isfinite(np.asarray(assemble_any(dlogits))).all()

    def test_layernorm_near_constant_input(self, cfg, rng):
        """Var ≈ 0 inputs: eps keeps inv_std finite in the 2D layer too."""
        from repro.core.layers import LayerNorm2D

        mesh = make_mesh(2)
        h = cfg.hidden_size
        ln = LayerNorm2D(mesh, "ln", np.ones(h), np.zeros(h), eps=1e-5)
        x = np.full((8, h), 3.0) + rng.normal(size=(8, h)) * 1e-12
        out = ln.forward(distribute_blocked_2d(mesh, x))
        vals = np.asarray(assemble_any(out))
        assert np.isfinite(vals).all()
        dx = ln.backward(distribute_blocked_2d(mesh, rng.normal(size=(8, h))))
        assert np.isfinite(np.asarray(assemble_any(dx))).all()

    def test_gelu_extreme_inputs(self):
        from repro.reference import functional as F

        x = np.array([-1e4, -50.0, 0.0, 50.0, 1e4])
        y = F.gelu(x)
        g = F.gelu_grad(x)
        assert np.isfinite(y).all() and np.isfinite(g).all()
        np.testing.assert_allclose(y[-1], x[-1])
        np.testing.assert_allclose(y[0], 0.0, atol=1e-12)
