"""End-to-end OptimusModel: equivalence with the reference, checkpointing,
memory behaviour, stem mode."""

import numpy as np
import pytest

from repro.backend.shape_array import ShapeArray
from repro.core import OptimusModel
from repro.mesh import assemble_blocked_2d
from repro.mesh.layouts import BLOCKED_2D
from repro.mesh.partition import assemble_row0_cols
from repro.nn import init_transformer_params
from repro.reference import ReferenceTransformer
from tests.conftest import make_mesh


def _assemble(p):
    if p.data.layout == BLOCKED_2D:
        return assemble_blocked_2d(p.grad)
    return assemble_row0_cols(p.grad)


@pytest.fixture
def reference(cfg, params, batch):
    ids, labels = batch
    ref = ReferenceTransformer(cfg, params)
    loss = float(ref.forward(ids, labels))
    return loss, ref.backward()


@pytest.mark.parametrize("q,ckpt", [(1, False), (2, False), (2, True), (3, True)])
def test_loss_and_all_grads_match_reference(cfg, params, batch, reference, q, ckpt):
    ids, labels = batch
    ref_loss, ref_grads = reference
    mesh = make_mesh(q)
    model = OptimusModel(mesh, cfg, params, checkpoint_activations=ckpt)
    loss = model.forward(ids, labels)
    assert loss == pytest.approx(ref_loss, abs=1e-10)
    model.backward()
    for p in model.parameters():
        np.testing.assert_allclose(
            _assemble(p), ref_grads[p.name], rtol=1e-8, atol=1e-11, err_msg=p.name
        )


def test_checkpointing_changes_nothing_numerically(cfg, params, batch):
    ids, labels = batch
    grads = {}
    for ckpt in (False, True):
        mesh = make_mesh(2)
        model = OptimusModel(mesh, cfg, params, checkpoint_activations=ckpt)
        model.forward(ids, labels)
        model.backward()
        grads[ckpt] = {p.name: _assemble(p) for p in model.parameters()}
    for name in grads[True]:
        np.testing.assert_array_equal(grads[True][name], grads[False][name])


def test_checkpointing_reduces_peak_memory(cfg, params, batch):
    ids, labels = batch
    peaks = {}
    for ckpt in (False, True):
        mesh = make_mesh(2)
        model = OptimusModel(mesh, cfg, params, checkpoint_activations=ckpt)
        model.forward(ids, labels)
        model.backward()
        peaks[ckpt] = mesh.sim.peak_memory()
    assert peaks[True] < peaks[False]


def test_checkpointing_triples_backward_compute(cfg, params, batch):
    """Backward = recompute-forward + 2 gradient products (paper §4)."""
    ids, labels = batch
    mesh = make_mesh(2)
    model = OptimusModel(mesh, cfg, params, checkpoint_activations=True)
    model.forward(ids, labels)
    fwd = mesh.sim.device(0).flops_gemm
    model.backward()
    bwd = mesh.sim.device(0).flops_gemm - fwd
    # the full model includes the (non-checkpointed) lm-head: ratio ≈ 3
    assert 2.4 < bwd / fwd < 3.2


def test_inference_returns_logits(cfg, params, batch):
    ids, _ = batch
    mesh = make_mesh(2)
    model = OptimusModel(mesh, cfg, params)
    logits = model.forward(ids)
    ref = ReferenceTransformer(cfg, params).forward(ids)
    np.testing.assert_allclose(assemble_blocked_2d(logits), ref, rtol=1e-9)


def test_grad_accumulation_over_microbatches(cfg, params, batch):
    ids, labels = batch
    mesh = make_mesh(2)
    model = OptimusModel(mesh, cfg, params)
    model.forward(ids, labels)
    model.backward()
    g1 = {p.name: _assemble(p) for p in model.parameters()}
    model.forward(ids, labels)
    model.backward()
    g2 = {p.name: _assemble(p) for p in model.parameters()}
    for name in g1:
        np.testing.assert_allclose(g2[name], 2 * g1[name], rtol=1e-9)


def test_validation_errors(cfg, params):
    mesh = make_mesh(2)
    model = OptimusModel(mesh, cfg, params)
    with pytest.raises(ValueError):
        model.forward(np.zeros((3, cfg.seq_len), dtype=int))  # b=3 not divisible
    with pytest.raises(ValueError):
        model.forward(np.zeros((4, cfg.seq_len + 1), dtype=int))  # wrong s
    with pytest.raises(RuntimeError):
        model.backward()  # no forward yet


def test_synthetic_batch(cfg, params):
    mesh = make_mesh(2)
    model = OptimusModel(mesh, cfg, params)
    ids, labels = model.synthetic_batch(4, seed=7)
    assert ids.shape == (4, cfg.seq_len)
    assert float(model.forward(ids, labels)) > 0

    mesh_s = make_mesh(2, backend="shape")
    params_s = init_transformer_params(cfg, backend="shape")
    model_s = OptimusModel(mesh_s, cfg, params_s)
    ids_s, labels_s = model_s.synthetic_batch(4)
    assert isinstance(ids_s, ShapeArray)


class TestStemMode:
    def test_stem_runs_numeric(self, cfg, params):
        mesh = make_mesh(2)
        model = OptimusModel(mesh, cfg, params, stem_only=True)
        out = model.stem_forward(4)
        assert out.global_shape == (4 * cfg.seq_len, cfg.hidden_size)
        dx = model.stem_backward()
        assert dx.global_shape == out.global_shape

    def test_stem_only_has_no_embedding_params(self, cfg):
        params = init_transformer_params(cfg, include_embedding=False)
        mesh = make_mesh(2)
        model = OptimusModel(mesh, cfg, params, stem_only=True)
        names = {p.name for p in model.parameters()}
        assert "embedding.table" not in names
        assert any("mlp.w1" in n for n in names)

    def test_stem_dryrun_charges_time(self, cfg):
        params = init_transformer_params(cfg, backend="shape", include_embedding=False)
        mesh = make_mesh(2, backend="shape")
        model = OptimusModel(mesh, cfg, params, stem_only=True)
        model.stem_forward(4)
        t_fwd = mesh.sim.elapsed()
        assert t_fwd > 0
        model.stem_backward()
        assert mesh.sim.elapsed() > t_fwd


class TestDryrunNumericConsistency:
    """The dryrun must charge exactly what the numeric run charges."""

    def test_counters_identical_across_backends(self, cfg):
        b = 4
        results = {}
        for backend in ("numpy", "shape"):
            mesh = make_mesh(2, backend=backend)
            params = init_transformer_params(
                cfg, seed=1, backend=backend, dtype="float32"
            )
            model = OptimusModel(mesh, cfg, params, checkpoint_activations=True)
            if backend == "numpy":
                rng = np.random.default_rng(0)
                ids = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
                labels = rng.integers(0, cfg.vocab_size, size=(b, cfg.seq_len))
            else:
                ids = ShapeArray((b, cfg.seq_len), "int64")
                labels = ShapeArray((b, cfg.seq_len), "int64")
            model.forward(ids, labels)
            model.backward()
            d = mesh.sim.device(0)
            results[backend] = (
                d.flops_gemm,
                d.bytes_comm,
                d.weighted_comm_volume,
                d.num_collectives,
                mesh.sim.elapsed(),
                mesh.sim.peak_memory(),
            )
        assert results["numpy"] == pytest.approx(results["shape"])
