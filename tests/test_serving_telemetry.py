"""Live serving telemetry: request tracing, /metrics endpoint, SLO alerts.

Three contracts under test:

* **read-only telemetry** — serve reports are byte-identical with the
  metrics endpoint on or off, and with alerting on or off (modulo the
  strictly-additive ``alerts`` sections);
* **determinism** — request-lifecycle trace events and alert
  firing/resolve sequences are identical across same-seed runs;
* **validity** — every scrape of a live endpoint parses as OpenMetrics,
  and counters only move forward within an arm.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.alerts import AlertEngine, AlertRule, default_serving_rules
from repro.obs.ledger import RunLedger, canonical_json
from repro.obs.live import MetricsServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import validate_openmetrics
from repro.serving.report import run_serve, run_sweep

OVERLOAD = dict(
    quick=True, rate_rps=8000.0, requests=24, schemes=("optimus",)
)


def _scrape(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as r:
        return r.status, r.read().decode()


# ----------------------------------------------------------------------
# alert rules + engine
# ----------------------------------------------------------------------
class TestAlertRules:
    def test_rule_roundtrip(self):
        r = AlertRule(
            "q", "serving/queue_depth", ">=", 8.0, for_s=1e-3,
            severity="critical", labels=(("scheme", "optimus"),),
        )
        d = r.to_dict()
        assert d["expr"].startswith("serving/queue_depth")
        assert AlertRule.from_dict(d) == r

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            AlertRule("x", "m", "!=", 1.0)
        with pytest.raises(ValueError):
            AlertRule("x", "m", ">", 1.0, stat="p42")
        with pytest.raises(ValueError):
            AlertRule("x", "m", ">", 1.0, severity="meh")
        with pytest.raises(ValueError):
            AlertRule("x", "m", ">", 1.0, for_s=-1.0)

    def test_duplicate_rule_names_rejected(self):
        rules = [AlertRule("a", "m", ">", 1.0), AlertRule("a", "m", "<", 1.0)]
        with pytest.raises(ValueError):
            AlertEngine(rules)

    def test_for_s_hysteresis(self):
        """A breach must *hold* for for_s before firing, then resolve."""
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        eng = AlertEngine([AlertRule("deep", "depth", ">=", 4.0, for_s=0.5)])
        g.set(5.0)
        assert eng.evaluate(reg, 0.1, 0) == []  # breach starts, not held
        assert eng.evaluate(reg, 0.4, 1) == []  # held 0.3s < 0.5s
        events = eng.evaluate(reg, 0.7, 2)  # held 0.6s -> fires
        assert [e.state for e in events] == ["firing"]
        assert eng.firing() == ["deep"]
        assert eng.evaluate(reg, 0.9, 3) == []  # already firing, no re-fire
        g.set(1.0)
        events = eng.evaluate(reg, 1.0, 4)
        assert [e.state for e in events] == ["resolved"]
        assert eng.firing() == []

    def test_flap_resets_hold_window(self):
        """Dropping below threshold mid-hold restarts the for_s clock."""
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        eng = AlertEngine([AlertRule("deep", "depth", ">=", 4.0, for_s=0.5)])
        g.set(5.0)
        eng.evaluate(reg, 0.0, 0)
        g.set(1.0)
        eng.evaluate(reg, 0.3, 1)  # breach cleared before it fired
        g.set(5.0)
        eng.evaluate(reg, 0.4, 2)  # breach restarts here
        assert eng.evaluate(reg, 0.8, 3) == []  # only 0.4s held
        assert [e.state for e in eng.evaluate(reg, 0.95, 4)] == ["firing"]

    def test_rate_stat_inactive_until_positive(self):
        """A zero counter at t=0 must not trip a '< floor' rate rule."""
        reg = MetricsRegistry()
        c = reg.counter("tok")
        eng = AlertEngine([AlertRule("slow", "tok", "<", 100.0, stat="rate")])
        assert eng.evaluate(reg, 0.0, 0) == []
        assert eng.evaluate(reg, 1.0, 1) == []  # still zero: inactive
        c.inc(5.0)
        assert [e.state for e in eng.evaluate(reg, 1.5, 2)] == ["firing"]

    def test_default_rules_cover_slo_and_capacity(self):
        names = {r.name for r in default_serving_rules(0.5, 0.05, 8)}
        assert names == {
            "ttft-p99-burn", "tpot-p99-burn", "queue-depth-ceiling",
            "kv-occupancy-high", "goodput-floor",
        }


# ----------------------------------------------------------------------
# byte-identity: telemetry is read-only over the simulation
# ----------------------------------------------------------------------
class TestByteIdentity:
    def test_default_report_has_no_alert_keys(self):
        doc = run_serve(0, quick=True, schemes=("optimus",))
        assert "alerts" not in doc["serving"]
        assert all("alerts" not in e for e in doc["schemes"])

    def test_alerts_on_is_additive_only(self):
        base = run_serve(0, quick=True, schemes=("optimus",))
        doc = run_serve(0, quick=True, schemes=("optimus",), alerts=True)
        assert "alerts" in doc["serving"]
        doc["serving"].pop("alerts")
        for e in doc["schemes"]:
            e.pop("alerts")
        assert canonical_json(doc) == canonical_json(base)

    def test_endpoint_on_off_identical(self):
        base = run_serve(0, quick=True, schemes=("optimus",))
        server = MetricsServer(port=0).start()
        try:
            doc = run_serve(
                0, quick=True, schemes=("optimus",), metrics_server=server
            )
        finally:
            server.stop()
        assert canonical_json(doc) == canonical_json(base)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_overload_alerts_fire_resolve_and_repeat(self):
        a = run_serve(0, alerts=True, **OVERLOAD)
        b = run_serve(0, alerts=True, **OVERLOAD)
        assert canonical_json(a) == canonical_json(b)
        (entry,) = a["schemes"]
        al = entry["alerts"]
        states = [e["state"] for e in al["events"]]
        assert al["fired_total"] >= 1
        assert al["resolved_total"] >= 1
        assert states.count("firing") == al["fired_total"]
        # every event pins the simulated step it was observed at
        assert all(isinstance(e["step"], int) for e in al["events"])

    def test_request_trace_events_deterministic(self):
        from repro.obs.profile import run_profile

        def lifecycle(sim):
            return [
                (e.kind, e.label, e.t_start, e.t_end, tuple(e.ranks),
                 tuple(sorted((e.attrs or {}).items())))
                for e in sim.tracer.events
                if e.kind in ("request", "alert")
            ]

        a = lifecycle(run_profile("serve"))
        b = lifecycle(run_profile("serve"))
        assert a == b
        labels = {label for _, label, *_ in a}
        assert {"queued", "admitted", "prefill", "decode",
                "complete", "request"} <= labels


# ----------------------------------------------------------------------
# live endpoint
# ----------------------------------------------------------------------
class TestLiveEndpoint:
    def test_concurrent_scrapes_valid_and_monotone(self):
        server = MetricsServer(port=0).start()
        url = f"http://127.0.0.1:{server.port}/metrics"
        bodies, stop = [], threading.Event()

        def scraper():
            while not stop.is_set():
                try:
                    status, body = _scrape(url)
                    if status == 200:
                        bodies.append(body)
                except OSError:
                    pass
                time.sleep(0.002)

        t = threading.Thread(target=scraper)
        t.start()
        try:
            run_serve(0, quick=True, schemes=("optimus",),
                      metrics_server=server)
        finally:
            stop.set()
            t.join()
            server.stop()
        assert len(bodies) >= 2
        for body in bodies:
            assert validate_openmetrics(body) == []
        steps = []
        for body in bodies:
            for line in body.splitlines():
                if line.startswith("repro_serving_steps_total{"):
                    steps.append(float(line.rsplit(" ", 1)[1]))
        assert steps and steps == sorted(steps)

    def test_health_quit_and_404(self):
        server = MetricsServer(port=0).start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            assert _scrape(f"{base}/healthz") == (200, "ok\n")
            with pytest.raises(urllib.error.HTTPError):
                _scrape(f"{base}/nope")
            # no source attached yet -> 503, not an invalid exposition
            with pytest.raises(urllib.error.HTTPError) as exc:
                _scrape(f"{base}/metrics")
            assert exc.value.code == 503
            assert _scrape(f"{base}/quitquitquit")[0] == 200
            server.hold(5.0)  # returns immediately: quit released it
        finally:
            server.stop()

    def test_ledger_endpoint_rereads_per_scrape(self, tmp_path):
        from repro.obs.ledger import record_from_sim
        from repro.runtime.simulator import Simulator

        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        sim = Simulator.for_mesh(q=2)
        sim.metrics.counter("demo/total").inc(3)
        led.append(record_from_sim("train", sim, label="a", seed=0))

        from repro.obs.dash import render_openmetrics_for_records

        server = MetricsServer(port=0).start()
        server.attach_renderer(
            lambda: render_openmetrics_for_records(led.read())
        )
        try:
            status, body = _scrape(f"http://127.0.0.1:{server.port}/metrics")
            assert status == 200
            assert "repro_demo_total" in body
            sim.metrics.counter("demo/total").inc(4)
            led.append(record_from_sim("train", sim, label="b", seed=0))
            _, body2 = _scrape(f"http://127.0.0.1:{server.port}/metrics")
            assert body2 != body  # newest record picked up without restart
        finally:
            server.stop()


# ----------------------------------------------------------------------
# sweep + dashboard + ledger
# ----------------------------------------------------------------------
class TestSweepAndDash:
    def test_sweep_report_and_dash_curve(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        doc = run_sweep(
            0, rates=(500.0, 4000.0), quick=True, schemes=("optimus",),
            ledger=led,
        )
        assert doc["report"] == "repro-serve-sweep-v1"
        assert [p["rate_rps"] for p in doc["points"]] == [500.0, 4000.0]
        assert all(p["p99_e2e_s"] > 0 for p in doc["points"])

        from repro.obs.dash import _sweep_section, sweep_series

        series = sweep_series(led.read())
        assert "optimus/poisson" in series["p99_e2e_s"]
        assert len(series["p99_e2e_s"]["optimus/poisson"]) == 2
        html_text = _sweep_section(series)
        assert "<svg" in html_text and "<script" not in html_text

    def test_sweep_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            run_sweep(0, rates=(), quick=True)
        with pytest.raises(ValueError):
            run_sweep(0, rates=(100.0, -5.0), quick=True)

    def test_alert_totals_reach_ledger_and_dash(self, tmp_path):
        led = RunLedger(str(tmp_path / "ledger.jsonl"))
        run_serve(0, alerts=True, ledger=led, **OVERLOAD)
        (rec,) = [r for r in led.read() if r.kind == "serve"]
        assert rec.extra["alerts"]["fired"] >= 1

        from repro.obs.dash import _alerts_section, alerts_rows

        rows = alerts_rows(led.read())
        assert rows and rows[0]["fired"] >= 1
        html_text = _alerts_section(rows)
        assert "FIRED" in html_text and "<script" not in html_text


# ----------------------------------------------------------------------
# perfetto + critpath over serve traces
# ----------------------------------------------------------------------
class TestServeTraceExports:
    def test_perfetto_request_slices_and_flows(self):
        from repro.obs.perfetto import chrome_trace
        from repro.obs.profile import run_profile

        sim = run_profile("serve")
        trace = chrome_trace(sim)
        evs = trace["traceEvents"]
        req = [e for e in evs if e.get("cat") == "request"]
        slices = [e for e in req if e["ph"] == "X"]
        flows = [e for e in req if e["ph"] in ("s", "t", "f")]
        assert slices and flows
        # each chained request gets exactly one start and one finish arrow
        per_id = {}
        for f in flows:
            per_id.setdefault(f["id"], []).append(f["ph"])
        for phases in per_id.values():
            assert phases.count("s") == 1 and phases.count("f") == 1
        # the requests thread exists on every rank; absent for non-serve runs
        assert any(
            e["ph"] == "M" and e.get("tid") == 2 for e in evs
        )
        tiny = chrome_trace(run_profile("tiny"))
        assert not any(
            e["ph"] == "M" and e.get("tid") == 2 for e in tiny["traceEvents"]
        )

    def test_critpath_ignores_request_events(self):
        from repro.obs.critpath import critpath_report
        from repro.obs.profile import run_profile

        doc = critpath_report(run_profile("serve"))
        assert doc["num_windows"] >= 1
        assert all(w["conservation_ok"] for w in doc["windows"])
        assert all("request" not in w["by_kind"] for w in doc["windows"])

    def test_calibration_suggestion_deterministic(self):
        from repro.obs.critpath import calibration_suggestion
        from repro.obs.profile import run_profile

        a = calibration_suggestion(run_profile("serve"), "serve", "optimus")
        b = calibration_suggestion(run_profile("serve"), "serve", "optimus")
        assert canonical_json(a) == canonical_json(b)
        assert a["schema"] == "repro-calib-v1"
        assert a["suggestion"]["comm_scale"] == pytest.approx(1.0, abs=0.05)
