"""Layout invariant validation and the simulator's strict mode."""

import numpy as np
import pytest

from repro.check import InvariantViolation, strict_mode, validate_dtensor
from repro.comm.group import ProcessGroup
from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.mesh.dtensor import DTensor
from repro.mesh.layouts import (
    BLOCKED_2D,
    RANK0,
    REPLICATED,
    ROW0_COLS,
    ROW_BLOCKED,
    SHARDED_1D,
)
from repro.nn import init_transformer_params
from repro.runtime import Simulator
from tests.conftest import make_mesh


def _blocked(mesh, R, C, rng):
    q = mesh.q
    shards = {
        mesh.rank(i, j): rng.normal(size=(R // q, C // q))
        for i in range(q)
        for j in range(q)
    }
    return DTensor(mesh, BLOCKED_2D, shards, (R, C))


class TestValidLayouts:
    def test_full_models_validate(self, cfg, batch):
        ids, labels = batch
        params = init_transformer_params(cfg, seed=1)
        opt_model = OptimusModel(make_mesh(2), cfg, params)
        opt_model.forward(ids, labels)
        opt_model.backward()
        opt_model.validate_invariants()  # params and grads

        params = init_transformer_params(cfg, seed=1)
        meg_model = MegatronModel(Simulator.for_flat(p=3), cfg, params)
        meg_model.forward(ids, labels)
        meg_model.backward()
        meg_model.validate_invariants()

    def test_blocked_2d(self, mesh2, rng):
        validate_dtensor(_blocked(mesh2, 8, 6, rng))

    def test_blocked_2d_ragged_rows(self, mesh2, rng):
        """MoE routes unequal token counts per mesh row — legal as long as
        the row blocks still tile the global shape exactly."""
        shards = {
            mesh2.rank(0, 0): rng.normal(size=(5, 3)),
            mesh2.rank(0, 1): rng.normal(size=(5, 3)),
            mesh2.rank(1, 0): rng.normal(size=(1, 3)),
            mesh2.rank(1, 1): rng.normal(size=(1, 3)),
        }
        validate_dtensor(DTensor(mesh2, BLOCKED_2D, shards, (6, 6)))

    def test_sharded_1d_negative_axis(self, rng):
        sim = Simulator.for_flat(p=3)
        g = ProcessGroup(sim, range(3), kind="test")
        shards = {r: rng.normal(size=(4, 2)) for r in g.ranks}
        validate_dtensor(DTensor(g, SHARDED_1D(-1), shards, (4, 6)))

    def test_rank0(self, mesh2, rng):
        validate_dtensor(DTensor(mesh2, RANK0, {0: rng.normal(size=(3,))}, (3,)))


class TestViolations:
    def test_wrong_shard_shape(self, mesh2, rng):
        dt = _blocked(mesh2, 8, 6, rng)
        dt.shards[mesh2.rank(1, 1)] = rng.normal(size=(9, 9))
        with pytest.raises(InvariantViolation, match="disagree on shape"):
            validate_dtensor(dt)

    def test_blocks_do_not_tile(self, mesh2, rng):
        shards = {r: rng.normal(size=(3, 3)) for r in mesh2.ranks}
        dt = DTensor.__new__(DTensor)
        dt.owner, dt.layout, dt.shards, dt.global_shape = mesh2, BLOCKED_2D, shards, (8, 6)
        with pytest.raises(InvariantViolation, match="sum to"):
            validate_dtensor(dt)

    def test_replica_divergence(self, mesh2, rng):
        full = rng.normal(size=(4, 4))
        shards = {r: full.copy() for r in mesh2.ranks}
        dt = DTensor(mesh2, REPLICATED, shards, (4, 4))
        dt.shards[3][0, 0] += 1e-9  # tiny but not bit-identical
        with pytest.raises(InvariantViolation, match="bitwise"):
            validate_dtensor(dt)

    def test_row_blocked_replica_divergence(self, mesh2, rng):
        block = rng.normal(size=(2, 4))
        shards = {
            mesh2.rank(i, j): block.copy() + (1.0 if (i, j) == (1, 1) else 0.0)
            for i in range(2)
            for j in range(2)
        }
        dt = DTensor.__new__(DTensor)
        dt.owner, dt.layout, dt.shards, dt.global_shape = mesh2, ROW_BLOCKED, shards, (4, 4)
        with pytest.raises(InvariantViolation, match="not bit-identical"):
            validate_dtensor(dt)

    def test_missing_rank(self, mesh2, rng):
        shards = {mesh2.rank(0, j): rng.normal(size=(2,)) for j in range(2)}
        del shards[mesh2.rank(0, 1)]
        dt = DTensor.__new__(DTensor)
        dt.owner, dt.layout, dt.shards, dt.global_shape = mesh2, ROW0_COLS, shards, (4,)
        with pytest.raises(InvariantViolation, match="rank set"):
            validate_dtensor(dt)

    def test_dtype_mismatch(self, mesh2, rng):
        dt = _blocked(mesh2, 8, 6, rng)
        r = mesh2.rank(0, 0)
        dt.shards[r] = dt.shards[r].astype(np.float32)
        with pytest.raises(InvariantViolation, match="dtype"):
            validate_dtensor(dt)

    def test_unknown_layout(self, mesh2, rng):
        from repro.mesh.layouts import Layout

        dt = DTensor.__new__(DTensor)
        dt.owner, dt.layout, dt.shards, dt.global_shape = (
            mesh2, Layout("diagonal"), {0: rng.normal(size=(2,))}, (2,),
        )
        with pytest.raises(InvariantViolation, match="unknown layout"):
            validate_dtensor(dt)


class TestStrictMode:
    def test_strict_sim_catches_corrupt_shard_at_construction(self, rng):
        """The acceptance negative test: a deliberately corrupted shard must
        be caught the moment the DTensor is built on a strict simulator."""
        mesh = make_mesh(2, strict_invariants=True)
        shards = {r: rng.normal(size=(4, 3)) for r in mesh.ranks}
        shards[3] = rng.normal(size=(4, 4))  # corrupt one block
        with pytest.raises(InvariantViolation):
            DTensor(mesh, BLOCKED_2D, shards, (8, 6))

    def test_strict_sim_accepts_valid_model(self, cfg, batch):
        ids, labels = batch
        params = init_transformer_params(cfg, seed=1)
        model = OptimusModel(make_mesh(2, strict_invariants=True), cfg, params)
        model.forward(ids, labels)
        model.backward()

    def test_disabled_by_default_and_togglable(self, rng):
        mesh = make_mesh(2, strict_invariants=False)
        shards = {r: rng.normal(size=(4, 3)) for r in mesh.ranks}
        shards[3] = rng.normal(size=(4, 4))
        DTensor(mesh, BLOCKED_2D, shards, (8, 6))  # off: not validated
        mesh.enable_strict_invariants()
        with pytest.raises(InvariantViolation):
            DTensor(mesh, BLOCKED_2D, shards, (8, 6))
        mesh.disable_strict_invariants()
        DTensor(mesh, BLOCKED_2D, shards, (8, 6))

    def test_strict_mode_context_manager(self, rng):
        mesh = make_mesh(2, strict_invariants=False)
        shards = {r: rng.normal(size=(4, 3)) for r in mesh.ranks}
        shards[0] = rng.normal(size=(1, 1))
        with strict_mode(mesh.sim):
            with pytest.raises(InvariantViolation):
                DTensor(mesh, BLOCKED_2D, shards, (8, 6))
        assert not mesh.sim.strict_invariants

    def test_env_var_enables_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_INVARIANTS", "1")
        assert Simulator.for_flat(p=2).strict_invariants
        monkeypatch.setenv("REPRO_STRICT_INVARIANTS", "0")
        assert not Simulator.for_flat(p=2).strict_invariants

    def test_dryrun_checks_shapes_only(self):
        from repro.backend.shape_array import ShapeArray

        mesh = make_mesh(2, backend="shape", strict_invariants=True)
        shards = {r: ShapeArray((4, 3), "float32") for r in mesh.ranks}
        DTensor(mesh, BLOCKED_2D, shards, (8, 6))  # valid shapes pass
        shards[3] = ShapeArray((4, 4), "float32")
        with pytest.raises(InvariantViolation):
            DTensor(mesh, BLOCKED_2D, shards, (8, 6))
