"""Smoke tests: the fast example scripts must run end to end.

The slower sweeps (scaling_study, memory_limits, gpu_arrangement) are
exercised through their underlying experiment modules in the benchmark
suite; here we execute the quick, user-facing entry points.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "diff vs serial: 0.00e+00" in out
    assert "Per-device accounting" in out


def test_train_language_model(capsys):
    _run("train_language_model.py", ["--steps", "12", "--q", "2"])
    out = capsys.readouterr().out
    assert "loss:" in out
    assert "greedy sample" in out


def test_moe_and_classification(capsys):
    _run("moe_and_classification.py")
    out = capsys.readouterr().out
    assert "max |diff| = " in out
    assert "held-out accuracy" in out


def test_hybrid_data_parallel(capsys):
    _run("hybrid_data_parallel.py")
    out = capsys.readouterr().out
    assert "hybrid loss" in out
    assert "gradient-sync share" in out


@pytest.mark.parametrize(
    "name",
    ["quickstart.py", "train_language_model.py", "scaling_study.py",
     "memory_limits.py", "gpu_arrangement.py", "moe_and_classification.py",
     "hybrid_data_parallel.py"],
)
def test_every_example_exists_and_documents_itself(name):
    path = EXAMPLES / name
    assert path.is_file()
    head = path.read_text().split('"""')[1]
    assert len(head.strip()) > 50  # real docstring, not a stub
    assert "Run:" in head
