"""The collective contract checker: oracle semantics, conservation, edges."""

import numpy as np
import pytest

from repro.check import CollectiveContractChecker, ContractViolation, contract_checks
from repro.comm import ProcessGroup, collectives as coll
from repro.core import OptimusModel
from repro.mesh.mesh import Mesh
from repro.nn import init_transformer_params
from repro.runtime import Simulator


def _group(p=4, **kw):
    sim = Simulator.for_flat(p=p, **kw)
    return ProcessGroup(sim, range(p), kind="test")


class TestCleanRuns:
    def test_full_model_step_passes_all_contracts(self, cfg, batch):
        ids, labels = batch
        params = init_transformer_params(cfg, seed=1)
        sim = Simulator.for_mesh(q=2, trace=True)
        model = OptimusModel(Mesh(sim, 2), cfg, params)
        with contract_checks() as checker:
            model.forward(ids, labels)
            model.backward()
        assert checker.calls["broadcast"] > 0
        assert checker.calls["all_reduce"] > 0

    def test_every_collective_validates(self, rng):
        g = _group(trace=True)
        sh = {r: rng.normal(size=(8, 4)) for r in g.ranks}
        with contract_checks() as checker:
            coll.broadcast(g, rng.normal(size=(3, 3)), root=1)
            coll.reduce(g, {r: v.copy() for r, v in sh.items()}, root=2)
            coll.all_reduce(g, {r: v.copy() for r, v in sh.items()})
            coll.all_gather(g, sh, axis=1)
            coll.reduce_scatter(g, {r: v.copy() for r, v in sh.items()}, axis=0)
            pieces = coll.scatter(g, rng.normal(size=(8, 4)), root=0, axis=0)
            coll.gather(g, pieces, root=3, axis=0)
        assert sum(checker.calls.values()) == 7

    def test_max_op_through_checker(self, rng):
        g = _group()
        sh = {r: rng.normal(size=(5,)) for r in g.ranks}
        with contract_checks():
            out = coll.all_reduce(g, sh, op="max")
            out2 = coll.reduce(g, sh, root=1, op="max")
        np.testing.assert_array_equal(out[0], np.maximum.reduce(list(sh.values())))
        np.testing.assert_array_equal(out2[1], out[0])

    def test_negative_axis_through_checker(self, rng):
        g = _group()
        sh = {r: rng.normal(size=(4, 8)) for r in g.ranks}
        with contract_checks():
            coll.all_gather(g, sh, axis=-1)
            coll.reduce_scatter(g, {r: v.copy() for r, v in sh.items()}, axis=-1)
            coll.scatter(g, rng.normal(size=(4, 8)), root=0, axis=-1)

    def test_single_rank_group_charged_nothing(self, rng):
        g = _group(p=1)
        with contract_checks():
            coll.all_reduce(g, {0: rng.normal(size=(3,))})
            coll.broadcast(g, rng.normal(size=(3,)), root=0)
        assert g.sim.elapsed() == 0.0
        assert g.sim.total_bytes_comm() == 0.0

    def test_indivisible_split_still_raises_value_error(self, rng):
        g = _group()
        with contract_checks():
            with pytest.raises(ValueError):
                coll.reduce_scatter(g, {r: rng.normal(size=(7, 3)) for r in g.ranks})
            with pytest.raises(ValueError):
                coll.scatter(g, rng.normal(size=(7, 3)), root=0)

    def test_dryrun_degrades_to_conservation_only(self):
        from repro.backend.shape_array import ShapeArray

        g = _group(backend="shape")
        sh = {r: ShapeArray((4, 4), "float32") for r in g.ranks}
        with contract_checks() as checker:
            out = coll.all_reduce(g, sh)
        assert out[0].shape == (4, 4)
        assert checker.calls["all_reduce"] == 1


class TestViolationDetection:
    def test_corrupted_payload_is_caught(self, rng, monkeypatch):
        """A broadcast that delivers wrong data must trip the oracle."""
        real = coll.broadcast

        def buggy_broadcast(group, src, root):
            out = real(group, src, root=root)
            out[group.ranks[-1]] = out[group.ranks[-1]] + 1e-12  # bit flip
            return out

        monkeypatch.setattr(coll, "broadcast", buggy_broadcast)
        g = _group()
        with contract_checks():
            with pytest.raises(ContractViolation, match="serial oracle"):
                coll.broadcast(g, rng.normal(size=(3,)), root=0)

    def test_aliasing_outputs_are_caught(self, rng, monkeypatch):
        real = coll.all_reduce

        def leaky_all_reduce(group, shards, op="sum"):
            out = real(group, shards, op=op)
            out[1] = out[0]  # two ranks share one buffer
            return out

        monkeypatch.setattr(coll, "all_reduce", leaky_all_reduce)
        g = _group()
        with contract_checks():
            with pytest.raises(ContractViolation, match="aliasing"):
                coll.all_reduce(g, {r: rng.normal(size=(3,)) for r in g.ranks})

    def test_unequal_charging_is_caught(self, rng, monkeypatch):
        real = coll.broadcast

        def miser_broadcast(group, src, root):
            out = real(group, src, root=root)
            group.sim.device(root).bytes_comm += 17  # root over-charged
            return out

        monkeypatch.setattr(coll, "broadcast", miser_broadcast)
        g = _group()
        with contract_checks():
            with pytest.raises(ContractViolation, match="unequal bytes"):
                coll.broadcast(g, rng.normal(size=(3,)), root=0)

    def test_matrix_reconciliation_catches_drift(self, rng):
        """Bytes charged to devices but absent from the trace (or vice
        versa) break the comm-matrix row-sum reconciliation."""
        g = _group(trace=True)
        with contract_checks():
            coll.all_reduce(g, {r: rng.normal(size=(3,)) for r in g.ranks})
            g.sim.device(0).bytes_comm += 1000.0  # phantom traffic
            with pytest.raises(ContractViolation, match="not conserved"):
                coll.broadcast(g, rng.normal(size=(3,)), root=0)

    def test_desynchronized_clocks_are_caught(self, rng, monkeypatch):
        real = coll.all_reduce

        def skewed_all_reduce(group, shards, op="sum"):
            out = real(group, shards, op=op)
            group.sim.device(group.ranks[0]).clock += 1.0
            return out

        monkeypatch.setattr(coll, "all_reduce", skewed_all_reduce)
        g = _group()
        with contract_checks():
            with pytest.raises(ContractViolation, match="not synchronized"):
                coll.all_reduce(g, {r: rng.normal(size=(3,)) for r in g.ranks})


class TestInstallation:
    def test_install_is_exclusive_and_reversible(self):
        original = coll.broadcast
        checker = CollectiveContractChecker()
        checker.install()
        try:
            assert coll.broadcast is not original
            with pytest.raises(RuntimeError):
                CollectiveContractChecker().install()
            with pytest.raises(RuntimeError):
                checker.install()
        finally:
            checker.uninstall()
        assert coll.broadcast is original
        checker.uninstall()  # idempotent

    def test_package_reexports_are_patched_too(self):
        import repro.comm as comm_pkg

        with contract_checks():
            assert comm_pkg.broadcast.__name__ == "checked_broadcast"
        assert comm_pkg.broadcast.__name__ == "broadcast"
