"""Extension experiment — hybrid data × tensor parallel scaling.

Weak scaling over the *data-parallel* dimension: R replicas of a 2×2
Optimus mesh, constant per-replica batch.  Ideal scaling doubles throughput
with R; the deviation is the per-step gradient all-reduce across replicas
(whose cost grows with R and with the parameter count, not the batch), i.e.
the classic data-parallel efficiency story stacked on top of the paper's
tensor parallelism.
"""

import pytest

from benchmarks.conftest import save_result
from repro.backend.shape_array import ShapeArray
from repro.config import ModelConfig
from repro.hybrid import DataParallel
from repro.utils import format_table

CFG = ModelConfig(
    vocab_size=25600, hidden_size=1024, num_heads=16, num_layers=6, seq_len=256
)
PER_REPLICA_BATCH = 8


def _run(R: int):
    dp = DataParallel.build(R, 2, CFG, backend="shape")
    b = PER_REPLICA_BATCH * R
    ids = ShapeArray((b, CFG.seq_len), "int64")
    dp.forward_backward(ids, ids)
    t = dp.sim.elapsed()
    return {"replicas": R, "batch": b, "time": t, "throughput": b / t}


@pytest.fixture(scope="module")
def results():
    return [_run(R) for R in (1, 2, 4)]


def test_benchmark_hybrid(benchmark, results):
    benchmark.pedantic(lambda: _run(2), rounds=1, iterations=1)
    base = results[0]["throughput"]
    rows = [
        [r["replicas"], 4 * r["replicas"], r["batch"], r["time"], r["throughput"],
         f"{r['throughput'] / (base * r['replicas']):.1%}"]
        for r in results
    ]
    save_result(
        "hybrid_scaling",
        format_table(
            ["replicas", "devices", "batch", "iter (s)", "seq/s", "DP efficiency"],
            rows,
            title="Hybrid data x tensor parallel weak scaling (2x2 mesh per replica)",
        ),
    )


def test_throughput_scales_with_replicas(results):
    thr = [r["throughput"] for r in results]
    assert thr[0] < thr[1] < thr[2]


def test_dp_efficiency_reasonable_and_decaying(results):
    base = results[0]["throughput"]
    effs = [r["throughput"] / (base * r["replicas"]) for r in results]
    assert effs[0] == pytest.approx(1.0)
    assert effs[2] <= effs[1] <= 1.0 + 1e-9  # sync cost grows with R
    assert effs[2] > 0.5  # but stays a win
