"""Wall-clock benchmarks of the numeric (real-data) execution paths.

These measure the *reproduction's own* performance — SUMMA on real numpy
shards vs a plain matmul, and a full distributed training step — so
regressions in the simulator's Python overhead are caught.
"""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core import OptimusModel
from repro.core.summa import summa_ab
from repro.megatron import MegatronModel
from repro.mesh import Mesh, distribute_blocked_2d
from repro.nn import init_transformer_params
from repro.runtime import Simulator
from repro.training import SGD


@pytest.fixture(scope="module")
def mesh():
    sim = Simulator.for_mesh(q=2)
    return Mesh(sim, 2)


def test_benchmark_summa_ab_numeric(benchmark, mesh):
    rng = np.random.default_rng(0)
    a = distribute_blocked_2d(mesh, rng.normal(size=(128, 128)))
    b = distribute_blocked_2d(mesh, rng.normal(size=(128, 128)))
    benchmark(lambda: summa_ab(mesh, a, b))


def test_benchmark_optimus_training_step(benchmark):
    cfg = tiny_config(num_layers=2)
    params = init_transformer_params(cfg, seed=1)
    sim = Simulator.for_mesh(q=2)
    model = OptimusModel(Mesh(sim, 2), cfg, params)
    opt = SGD(model.parameters(), lr=0.1)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))

    def step():
        opt.zero_grad()
        model.forward(ids, labels)
        model.backward()
        opt.step()

    benchmark(step)


def test_benchmark_megatron_training_step(benchmark):
    cfg = tiny_config(num_layers=2)
    params = init_transformer_params(cfg, seed=1)
    sim = Simulator.for_flat(p=3)
    model = MegatronModel(sim, cfg, params)
    opt = SGD(model.parameters(), lr=0.1)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))
    labels = rng.integers(0, cfg.vocab_size, size=(4, cfg.seq_len))

    def step():
        opt.zero_grad()
        model.forward(ids, labels)
        model.backward()
        opt.step()

    benchmark(step)


def test_benchmark_dryrun_stem_layer(benchmark):
    """Throughput of the shape-backend simulation itself (per layer)."""
    from repro.config import ModelConfig
    from repro.experiments.runner import run_optimus_stem

    cfg = ModelConfig(
        vocab_size=51200, hidden_size=8192, num_heads=128, num_layers=1, seq_len=512
    )
    benchmark.pedantic(
        lambda: run_optimus_stem(cfg, q=8, batch_size=384), rounds=1, iterations=1
    )
