"""Extension experiment — the three parallelism families side by side.

The paper's §1 surveys pipeline parallelism (GPipe/PipeDream) and 1D tensor
parallelism (Megatron) before proposing 2D.  With all three implemented on
the same simulated cluster, we can run the comparison the paper implies:
identical model, identical device count, one training iteration each.

Expected shape: on a single node (p=4, fast interconnect) tensor
parallelism wins — the pipeline pays its (S−1)/(m+S−1) bubble; pipeline
memory is the lowest (only 1/S of the layers per device plus in-flight
micro-batches); across nodes the pipeline's tiny point-to-point traffic
makes it competitive where all-reduce-heavy Megatron suffers.
"""

import pytest

from benchmarks.conftest import save_result
from repro.backend.shape_array import ShapeArray
from repro.config import ModelConfig
from repro.core import OptimusModel
from repro.megatron import MegatronModel
from repro.mesh import Mesh
from repro.nn import init_transformer_params
from repro.pipeline import PipelineModel, bubble_fraction
from repro.runtime import Simulator
from repro.utils import format_bytes, format_table

CFG = ModelConfig(
    vocab_size=51200, hidden_size=2048, num_heads=32, num_layers=8, seq_len=512
)
BATCH = 16
MICRO = 8


def _run(kind: str):
    params = init_transformer_params(CFG, backend="shape", dtype="float32")
    ids = ShapeArray((BATCH, CFG.seq_len), "int64")
    labels = ShapeArray((BATCH, CFG.seq_len), "int64")
    if kind == "optimus":
        sim = Simulator.for_mesh(q=2, backend="shape")
        model = OptimusModel(Mesh(sim, 2), CFG, params)
        model.forward(ids, labels)
        model.backward()
    elif kind == "megatron":
        sim = Simulator.for_flat(p=4, backend="shape")
        model = MegatronModel(sim, CFG, params)
        model.forward(ids, labels)
        model.backward()
    else:  # pipeline variants: "pipeline_gpipe" / "pipeline_1f1b"
        sim = Simulator.for_flat(p=4, backend="shape")
        model = PipelineModel(
            sim, CFG, params, num_micro_batches=MICRO,
            schedule=kind.split("_")[1],
        )
        model.forward_backward(ids, labels)
    d0 = sim.device(0)
    return {
        "time": sim.elapsed(),
        "peak": sim.peak_memory(),
        "comm_time": max(d.comm_time for d in sim.devices),
        "compute_time": max(d.compute_time for d in sim.devices),
    }


@pytest.fixture(scope="module")
def results():
    return {k: _run(k) for k in ("optimus", "megatron", "pipeline_gpipe", "pipeline_1f1b")}


def test_benchmark_comparison(benchmark, results):
    benchmark.pedantic(lambda: _run("pipeline_1f1b"), rounds=1, iterations=1)
    rows = [
        [
            name,
            r["time"],
            BATCH / r["time"],
            r["compute_time"],
            r["comm_time"],
            format_bytes(r["peak"]),
        ]
        for name, r in results.items()
    ]
    out = format_table(
        ["scheme", "iter (s)", "seq/s", "compute (s)", "comm (s)", "peak/device"],
        rows,
        title=f"Parallelism families on 4 devices (h={CFG.hidden_size}, "
        f"N={CFG.num_layers}, b={BATCH})",
    )
    out += (
        f"\npipeline bubble fraction at S=4, m={MICRO}: "
        f"{bubble_fraction(4, MICRO):.3f}"
    )
    save_result("parallelism_comparison", out)


def test_tensor_parallel_beats_pipeline_on_one_node(results):
    """Intra-node bandwidth is cheap; the pipeline bubble is not."""
    for pipe in ("pipeline_gpipe", "pipeline_1f1b"):
        assert results["megatron"]["time"] < results[pipe]["time"]


def test_pipeline_has_lowest_parameter_memory(results):
    """Each pipeline stage holds 1/S of the layers (plus the embedding on
    the boundary stages), so its peak sits below the tensor-parallel runs
    at this scale."""
    assert results["pipeline_1f1b"]["peak"] < results["megatron"]["peak"]


def test_1f1b_no_slower_than_gpipe(results):
    assert results["pipeline_1f1b"]["time"] <= results["pipeline_gpipe"]["time"] * 1.02


def test_pipeline_comm_is_negligible(results):
    """Point-to-point activation hand-off ≪ all-reduce/broadcast traffic."""
    assert results["pipeline_1f1b"]["comm_time"] < results["megatron"]["comm_time"]
    assert results["pipeline_1f1b"]["comm_time"] < results["optimus"]["comm_time"]
