"""Ablation A2 — the §3.1.2 isoefficiency analysis.

Regenerates the paper's scalability headline — Optimus's isoefficiency
function ``W ~ (√p·log p)³`` vs Megatron's ``W ~ p³`` — by numerically
solving the efficiency equation for the problem size that holds E = 0.8 at
each device count, and checking the growth tracks the asymptotic laws.
"""

import pytest

from benchmarks.conftest import save_result
from repro.perfmodel import (
    asymptotic_work_megatron,
    asymptotic_work_optimus,
    efficiency_megatron,
    efficiency_optimus,
    isoefficiency_hidden,
    isoefficiency_work,
)
from repro.utils.tables import format_table

PS = [4, 16, 64, 256, 1024, 4096]


@pytest.fixture(scope="module")
def curve():
    rows = []
    for p in PS:
        hm = isoefficiency_hidden("megatron", p)
        ho = isoefficiency_hidden("optimus", p)
        rows.append(
            [p, hm, ho, isoefficiency_work("megatron", p), isoefficiency_work("optimus", p)]
        )
    return rows


def test_benchmark_isoefficiency(benchmark, curve):
    benchmark.pedantic(lambda: isoefficiency_work("optimus", 4096), rounds=3, iterations=1)
    save_result(
        "isoefficiency",
        format_table(
            ["p", "h (Megatron)", "h (Optimus)", "W (Megatron)", "W (Optimus)"],
            curve,
            title="Isoefficiency at E=0.8 — problem size needed to stay efficient",
        ),
    )


def test_optimus_needs_vastly_smaller_problems(curve):
    for p, hm, ho, wm, wo in curve:
        if p >= 16:
            assert wo < wm
    # the gap explodes with p
    assert curve[-1][3] / curve[-1][4] > 100


def test_growth_tracks_paper_asymptotics(curve):
    w = {p: (wm, wo) for p, _, _, wm, wo in curve}
    meg_growth = w[4096][0] / w[256][0]
    opt_growth = w[4096][1] / w[256][1]
    assert meg_growth == pytest.approx(
        asymptotic_work_megatron(4096) / asymptotic_work_megatron(256), rel=0.3
    )
    assert opt_growth == pytest.approx(
        asymptotic_work_optimus(4096) / asymptotic_work_optimus(256), rel=0.35
    )


def test_efficiency_at_fixed_h_favours_optimus(curve):
    for p in (64, 1024):
        assert efficiency_optimus(8192, p) > efficiency_megatron(8192, p)
