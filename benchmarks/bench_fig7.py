"""Benchmark + reproduction of Figure 7 (weak & strong scaling efficiency).

Efficiency = T_serial / (p·T_p), with T_serial obtained by actually running
the full problem on one simulated device (the paper had to extrapolate).
Claims checked: weak-scaling efficiency decays for both schemes but Optimus
overtakes Megatron from 16 GPUs with a growing margin; in strong scaling
the Optimus/Megatron efficiency ratio grows monotonically and crosses 1 at
64 GPUs.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments import fig7


@pytest.fixture(scope="module")
def weak_points():
    return fig7.run_weak()


@pytest.fixture(scope="module")
def strong_points():
    return fig7.run_strong()


def _eff(points, mode):
    return {
        (pt.scheme, pt.num_devices): pt.efficiency for pt in points if pt.mode == mode
    }


def test_benchmark_fig7_weak(benchmark, weak_points):
    benchmark.pedantic(fig7.run_weak, rounds=1, iterations=1)
    save_result(
        "fig7_weak",
        fig7.render(weak_points) + "\n\n" + fig7.plot(weak_points, "weak"),
    )


def test_benchmark_fig7_strong(benchmark, strong_points):
    benchmark.pedantic(fig7.run_strong, rounds=1, iterations=1)
    save_result(
        "fig7_strong",
        fig7.render(strong_points) + "\n\n" + fig7.plot(strong_points, "strong"),
    )


def test_weak_efficiency_decays(weak_points):
    eff = _eff(weak_points, "weak")
    for scheme in ("megatron", "optimus"):
        series = [eff[(scheme, p)] for p in (4, 16, 36, 64)]
        assert series == sorted(series, reverse=True), scheme
        assert all(0 < e <= 1.0 for e in series)


def test_weak_optimus_overtakes_from_16(weak_points):
    eff = _eff(weak_points, "weak")
    assert eff[("megatron", 4)] > eff[("optimus", 4)]
    for p in (16, 36, 64):
        assert eff[("optimus", p)] > eff[("megatron", p)], p


def test_weak_margin_grows(weak_points):
    eff = _eff(weak_points, "weak")
    margins = [eff[("optimus", p)] / eff[("megatron", p)] for p in (4, 16, 36, 64)]
    assert margins == sorted(margins)


def test_strong_ratio_crosses_at_64(strong_points):
    eff = _eff(strong_points, "strong")
    ratios = [eff[("optimus", p)] / eff[("megatron", p)] for p in (4, 16, 36, 64)]
    assert ratios == sorted(ratios)  # Optimus's relative trend is upward
    assert ratios[0] < 1.0 < ratios[-1]  # crossover by 64 GPUs
