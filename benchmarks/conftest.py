"""Benchmark-suite helpers: every bench renders its table to stdout and into
``benchmarks/results/`` so the reproduced rows survive the run."""

from __future__ import annotations

import json
import pathlib
from typing import Mapping, Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str, metrics: Optional[Mapping] = None) -> None:
    """Print a rendered table and persist it under benchmarks/results/.

    When ``metrics`` is given it is additionally written as
    ``results/{name}.json`` so downstream tooling (CI trend lines, the
    profile reports) can consume the numbers without re-parsing tables.
    """
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if metrics is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n"
        )


def split_metrics(results: Sequence) -> list:
    """Comm/compute split rows for a sequence of StemResult objects."""
    return [
        {
            "scheme": r.scheme,
            "num_devices": r.num_devices,
            "batch_size": r.batch_size,
            "forward_time": r.forward_time,
            "backward_time": r.backward_time,
            "compute_time": r.compute_time,
            "comm_time": r.comm_time,
            "comm_fraction": r.comm_fraction,
            "throughput": r.throughput,
            "peak_memory_bytes": r.peak_memory_bytes,
        }
        for r in results
    ]
