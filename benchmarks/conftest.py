"""Benchmark-suite helpers: every bench renders its table to stdout and into
``benchmarks/results/`` so the reproduced rows survive the run."""

from __future__ import annotations

import json
import pathlib
import time
from typing import Mapping, Optional, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _write_preserving(path: pathlib.Path, content: str) -> None:
    """Write ``content`` to ``path`` without silently discarding old results.

    Identical content is a no-op; differing content moves the existing file
    aside to ``<stem>.<mtime-stamp><suffix>`` first, so two bench runs in
    one CI job (or a re-run after a code change) never clobber each other.
    """
    if path.exists():
        old = path.read_text()
        if old == content:
            return
        stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(path.stat().st_mtime))
        archived = path.with_name(f"{path.stem}.{stamp}{path.suffix}")
        n = 1
        while archived.exists():
            archived = path.with_name(f"{path.stem}.{stamp}-{n}{path.suffix}")
            n += 1
        path.rename(archived)
    path.write_text(content)


def save_result(name: str, text: str, metrics: Optional[Mapping] = None) -> None:
    """Print a rendered table and persist it under benchmarks/results/.

    When ``metrics`` is given it is additionally written as
    ``results/{name}.json`` so downstream tooling (CI trend lines, the
    profile reports) can consume the numbers without re-parsing tables.
    Existing differing results are archived with a timestamp rather than
    overwritten (see :func:`_write_preserving`).
    """
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    _write_preserving(RESULTS_DIR / f"{name}.txt", text + "\n")
    if metrics is not None:
        _write_preserving(
            RESULTS_DIR / f"{name}.json",
            json.dumps(metrics, indent=2, sort_keys=True) + "\n",
        )


def split_metrics(results: Sequence) -> list:
    """Comm/compute split rows for a sequence of StemResult objects."""
    return [
        {
            "scheme": r.scheme,
            "num_devices": r.num_devices,
            "batch_size": r.batch_size,
            "forward_time": r.forward_time,
            "backward_time": r.backward_time,
            "compute_time": r.compute_time,
            "comm_time": r.comm_time,
            "comm_fraction": r.comm_fraction,
            "throughput": r.throughput,
            "peak_memory_bytes": r.peak_memory_bytes,
        }
        for r in results
    ]
