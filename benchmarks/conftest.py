"""Benchmark-suite helpers: every bench renders its table to stdout and into
``benchmarks/results/`` so the reproduced rows survive the run."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
