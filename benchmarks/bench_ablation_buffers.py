"""Ablation A1 — the §3.2.3 memory-management techniques.

Quantifies each design choice DESIGN.md calls out:

1. managed arenas vs per-tensor allocation → allocator-event count (the
   fragmentation-pressure proxy the paper's pre-allocation removes);
2. merging the forward and backward buffers (§3.2.3 option 1) → peak bytes;
3. distributed vs replicated activation checkpoints (Megatron baseline,
   §3.1.1) → peak bytes;
4. checkpointing on/off → peak bytes vs backward time (the classic
   compute-for-memory trade of [Chen et al. 2016]).
"""

import pytest

from benchmarks.conftest import save_result
from repro.config import ModelConfig
from repro.core import BufferManager, OptimusModel
from repro.megatron import MegatronModel
from repro.mesh import Mesh
from repro.nn import init_transformer_params
from repro.runtime import Simulator
from repro.utils.tables import format_bytes, format_table

CFG = ModelConfig(
    vocab_size=51200, hidden_size=2048, num_heads=32, num_layers=8, seq_len=512
)
BATCH = 16


def _run_optimus(managed=True, merge=False, checkpoint=True, fused=False, skip=False):
    sim = Simulator.for_mesh(q=2, backend="shape")
    mesh = Mesh(sim, 2)
    params = init_transformer_params(
        CFG, backend="shape", dtype="float32", include_embedding=False
    )
    buffers = BufferManager(
        sim, ranks=mesh.ranks, managed=managed, merge_fwd_bwd=merge,
        skip_matmul_outputs=skip,
    )
    model = OptimusModel(
        mesh, CFG, params, checkpoint_activations=checkpoint,
        buffers=buffers, stem_only=True, fused_attention=fused,
    )
    model.stem_forward(BATCH)
    fwd = sim.elapsed()
    model.stem_backward()
    dev = sim.device(0)
    return {
        "peak": dev.memory.peak,
        "allocs": dev.memory.num_allocs,
        "fwd_time": fwd,
        "bwd_time": sim.elapsed() - fwd,
    }


@pytest.fixture(scope="module")
def results():
    out = {
        "managed": _run_optimus(managed=True),
        "unmanaged": _run_optimus(managed=False),
        "merged": _run_optimus(managed=True, merge=True),
        "no_ckpt": _run_optimus(checkpoint=False),
        "fused_attention": _run_optimus(fused=True),
        "skip_matmul_outputs": _run_optimus(skip=True),
    }
    sim = Simulator.for_flat(p=4, backend="shape")
    params = init_transformer_params(
        CFG, backend="shape", dtype="float32", include_embedding=False
    )
    for layout in ("distributed", "replicated"):
        model = MegatronModel(
            sim_ := Simulator.for_flat(p=4, backend="shape"), CFG, params,
            checkpoint_layout=layout, stem_only=True,
        )
        model.stem_forward(BATCH)
        model.stem_backward()
        out[f"megatron_{layout}_ckpt"] = {
            "peak": sim_.device(0).memory.peak,
            "allocs": sim_.device(0).memory.num_allocs,
            "fwd_time": 0.0,
            "bwd_time": 0.0,
        }
    return out


def test_benchmark_ablation(benchmark, results):
    benchmark.pedantic(_run_optimus, rounds=1, iterations=1)
    rows = [
        [name, format_bytes(r["peak"]), r["allocs"], r["fwd_time"], r["bwd_time"]]
        for name, r in results.items()
    ]
    save_result(
        "ablation_buffers",
        format_table(
            ["variant", "peak/device", "alloc events", "fwd (s)", "bwd (s)"],
            rows,
            title="Ablation — §3.2.3 memory management techniques",
        ),
    )


def test_managed_buffers_slash_allocator_traffic(results):
    """The paper's systematic buffering: same peak, far less allocator churn
    (the residual events are parameter materialization + arena growth)."""
    assert results["managed"]["allocs"] * 3 < results["unmanaged"]["allocs"]
    # arenas retain their high-water capacity where per-tensor allocation
    # frees exactly, so managed sits a few percent above — the price of the
    # paper's anti-fragmentation guarantee
    assert results["managed"]["peak"] == pytest.approx(
        results["unmanaged"]["peak"], rel=0.10
    )


def test_merged_fwd_bwd_buffer_is_peak_neutral_under_checkpointing(results):
    """Measured finding: with checkpointing, recomputed-forward and backward
    tensors are live together, so arena-level merging (§3.2.3 option 1)
    cannot reduce the peak — slot-level reuse (option 3) is what helps."""
    assert results["merged"]["peak"] == pytest.approx(results["managed"]["peak"], rel=0.02)


def test_skip_matmul_outputs_saves_memory(results):
    """§3.2.3 option 3: not re-buffering matmul outputs during recompute."""
    assert results["skip_matmul_outputs"]["peak"] < results["managed"]["peak"]


def test_checkpointing_trades_compute_for_memory(results):
    assert results["managed"]["peak"] < results["no_ckpt"]["peak"]
    assert results["managed"]["bwd_time"] > results["no_ckpt"]["bwd_time"]


def test_fused_attention_trades_compute_for_memory(results):
    """§6 operation fusion: lower peak (no [b,n,s,s] probs), slightly more
    backward compute (the per-chunk recompute GEMM)."""
    assert results["fused_attention"]["peak"] < results["managed"]["peak"]
    assert results["fused_attention"]["bwd_time"] >= results["managed"]["bwd_time"]


def test_distributed_checkpoints_save_memory(results):
    assert (
        results["megatron_distributed_ckpt"]["peak"]
        < results["megatron_replicated_ckpt"]["peak"]
    )
