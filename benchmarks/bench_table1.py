"""Benchmark + reproduction of Table 1 (per-layer comm & compute costs).

Regenerates the paper's cost table by *measuring* the simulator's per-device
β-weighted communication volume and GEMM MAC counters over one transformer
layer and comparing them with the closed forms.  The benchmark times the
full single-layer dryrun of both schemes.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments import table1


@pytest.fixture(scope="module")
def rows():
    return table1.run()


def test_benchmark_table1(benchmark, rows):
    benchmark.pedantic(table1.run, rounds=1, iterations=1)
    save_result("table1", table1.render(rows))


def test_compute_matches_exactly(rows):
    for r in rows:
        if r.quantity == "compute (MACs)":
            assert r.ratio == pytest.approx(1.0, rel=1e-6), r


def test_comm_matches_within_ignored_terms(rows):
    """Comm is the formula plus the small LN/bias collectives Table 1 omits
    (and, for Megatron backward, the distributed-checkpoint all-gather)."""
    for r in rows:
        if r.quantity == "comm (scalars)":
            assert 1.0 <= r.ratio <= 1.13, r


def test_optimus_backward_is_3x_forward(rows):
    comm = {
        (r.scheme, r.phase): r.measured for r in rows if r.quantity == "comm (scalars)"
    }
    assert comm[("optimus", "backward")] / comm[("optimus", "forward")] == pytest.approx(
        3.0, rel=0.02
    )
    # Megatron: 2x + the checkpoint all-gather
    ratio_m = comm[("megatron", "backward")] / comm[("megatron", "forward")]
    assert 2.0 <= ratio_m <= 2.3
