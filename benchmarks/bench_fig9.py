"""Benchmark + reproduction of Figure 9 (memory limits / max batch size).

For each Table 2 configuration, bisects the largest batch whose per-device
peak (byte-accurate dryrun allocator) fits in 16 GB.  The paper's claims:
Megatron's limit decreases with p, Optimus's increases, reaching 8× at 64
GPUs (b = 480 for the paper; the absolute level depends on framework
overheads, the ratio and the trends are the reproduced quantities).
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments import fig9


@pytest.fixture(scope="module")
def rows():
    return fig9.run()


def _limits(rows, scheme):
    return {r.num_devices: r.max_batch for r in rows if r.scheme == scheme}


def test_benchmark_fig9(benchmark, rows):
    def _small_probe():
        # keep the timed section light; the full sweep runs once via fixture
        from repro.config import table2_weak_scaling
        from repro.perfmodel import measure_peak_bytes

        cfg = table2_weak_scaling()[0]["model_optimus"]
        return measure_peak_bytes("optimus", cfg, 4, 96)

    benchmark.pedantic(_small_probe, rounds=1, iterations=1)
    out = fig9.render(rows) + (
        f"\nOptimus/Megatron max-batch ratio at p=64: "
        f"{fig9.ratio_at(rows, 64):.2f}x (paper: 8x)\n\n"
    ) + fig9.plot(rows)
    save_result("fig9", out)


def test_megatron_limit_decreases(rows):
    lim = _limits(rows, "megatron")
    series = [lim[p] for p in (4, 16, 36, 64)]
    assert series == sorted(series, reverse=True)


def test_optimus_limit_increases(rows):
    lim = _limits(rows, "optimus")
    series = [lim[p] for p in (4, 16, 36, 64)]
    assert series == sorted(series)


def test_ratio_at_64_is_about_8x(rows):
    assert fig9.ratio_at(rows, 64) == pytest.approx(8.0, rel=0.25)


def test_paper_batches_fit_paper_cannot_exceed(rows):
    """The paper ran Optimus at b=384 and Megatron at b=30 on 64 GPUs —
    both must be within our measured limits."""
    assert _limits(rows, "optimus")[64] >= 384
    assert _limits(rows, "megatron")[64] >= 30
