"""Benchmark + reproduction of Table 3 (strong scaling, fixed problem size).

Checks the paper's claims: Optimus throughput trends *upwards* with p (the
"abnormal increasing trend" of §5.2, caused by SUMMA's per-device
communication shrinking with √p at fixed problem size) and Optimus
surpasses Megatron at 64 GPUs.
"""

import pytest

from benchmarks.conftest import save_result, split_metrics
from repro.experiments import table3


@pytest.fixture(scope="module")
def rows():
    return table3.run()


def _by(rows):
    return {(r.result.scheme, r.result.num_devices): r.result for r in rows}


def test_benchmark_table3(benchmark, rows):
    benchmark.pedantic(table3.run, rounds=1, iterations=1)
    by = _by(rows)
    ratio = by[("optimus", 64)].throughput / by[("megatron", 64)].throughput
    split = split_metrics([r.result for r in rows])
    save_result(
        "table3",
        table3.render(rows)
        + f"\nOptimus/Megatron throughput at p=64: {ratio:.2f}x (paper: 1.11x)\n"
        + "\n".join(
            f"  {m['scheme']:>8} p={m['num_devices']:<3} "
            f"compute {m['compute_time']:.3f}s  comm {m['comm_time']:.3f}s "
            f"({m['comm_fraction']:.1%} comm)"
            for m in split
        ),
        metrics={"rows": split},
    )


def test_optimus_throughput_increases_with_p(rows):
    thr = table3.optimus_trend(rows)
    assert thr == sorted(thr)
    assert thr[-1] > 1.5 * thr[0]


def test_optimus_surpasses_megatron_at_64(rows):
    by = _by(rows)
    assert by[("optimus", 64)].throughput > by[("megatron", 64)].throughput
    # and not before 16 (paper: Megatron ahead at small scale)
    assert by[("megatron", 4)].throughput > by[("optimus", 4)].throughput


def test_optimus_comm_time_shrinks_with_p(rows):
    """The §5.2 mechanism: at fixed problem size the per-iteration time of
    Optimus falls as devices are added."""
    opt = [r.result for r in rows if r.result.scheme == "optimus"]
    totals = [r.forward_time + r.backward_time for r in opt]
    assert totals == sorted(totals, reverse=True)


def test_times_within_2x_of_paper(rows):
    for r in rows:
        assert r.result.forward_per_seq == pytest.approx(r.paper[0], rel=1.0)
        assert r.result.throughput == pytest.approx(r.paper[2], rel=1.0)
