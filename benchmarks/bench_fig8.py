"""Benchmark + reproduction of Figure 8 (naive vs bunched GPU arrangement).

The paper's claim is about column-group traffic on 4 nodes × 4 GPUs: naive
placement makes every column span all 4 nodes with 4-way NIC crowding;
bunching 2×2 sub-meshes per node halves both.  We verify the
single-collective effect and also report the end-to-end stem effect — an
honest extra finding: since SUMMA's activation blocks travel along mesh
*rows* (which the naive row-major placement keeps intra-node), the
arrangement matters far less end-to-end than at the collective level.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments import fig8


@pytest.fixture(scope="module")
def rows():
    return fig8.run()


def test_benchmark_fig8(benchmark, rows):
    benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    save_result("fig8", fig8.render(rows))


def test_column_broadcast_speedup(rows):
    bcast = next(r for r in rows if r.level == "column broadcast")
    assert bcast.speedup > 2.0  # the Fig. 8 effect


def test_bunched_never_slower_end_to_end(rows):
    stem = next(r for r in rows if r.level == "stem iteration")
    assert stem.speedup >= 0.98


def test_bunched_profile():
    """Direct check of the Fig. 8 geometry claims."""
    from repro.hardware import ClusterTopology, bunched_arrangement, frontera_rtx

    cl = frontera_rtx(4)
    topo = ClusterTopology(cl)
    arr = bunched_arrangement(cl, 4)
    col = [i * 4 + 0 for i in range(4)]
    prof = topo.group_profile(col, arr)
    assert prof.nodes_spanned == 2  # "there are only two nodes involved"
    cols = [[i * 4 + j for i in range(4)] for j in range(4)]
    assert topo.crowding(cols, arr) == 2  # "only two GPUs share the cable"
