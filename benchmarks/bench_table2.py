"""Benchmark + reproduction of Table 2 (weak scaling, 4 → 64 GPUs).

Runs the paper's exact configurations (h ∝ √p, N = 24, s = 512, paper batch
sizes) as dryrun simulations on the Frontera-RTX hardware model and checks
the paper's qualitative results: Megatron ahead on a single node, Optimus
ahead from 16 GPUs, and ≈1.5×/1.8× training/inference speedup at 64 GPUs.
"""

import pytest

from benchmarks.conftest import save_result, split_metrics
from repro.experiments import table2


@pytest.fixture(scope="module")
def rows():
    return table2.run()


def _by(rows):
    return {(r.result.scheme, r.result.num_devices): r.result for r in rows}


def test_benchmark_table2(benchmark, rows):
    benchmark.pedantic(table2.run, rounds=1, iterations=1)
    tr, inf = table2.speedup_at(rows, 64)
    split = split_metrics([r.result for r in rows])
    out = table2.render(rows) + (
        f"\nOptimus speedup over Megatron on 64 GPUs: {tr:.2f}x training, "
        f"{inf:.2f}x inference (paper: 1.48x / 1.79x)\n"
        + "\n".join(
            f"  {m['scheme']:>8} p={m['num_devices']:<3} "
            f"compute {m['compute_time']:.3f}s  comm {m['comm_time']:.3f}s "
            f"({m['comm_fraction']:.1%} comm)"
            for m in split
        )
    )
    save_result("table2", out, metrics={"rows": split})


def test_megatron_wins_on_one_node(rows):
    by = _by(rows)
    assert by[("megatron", 4)].throughput > by[("optimus", 4)].throughput


def test_optimus_wins_from_16_gpus(rows):
    by = _by(rows)
    for p in (16, 36, 64):
        assert by[("optimus", p)].throughput > by[("megatron", p)].throughput, p


def test_optimus_margin_grows_with_p(rows):
    by = _by(rows)
    ratios = [
        by[("optimus", p)].throughput / by[("megatron", p)].throughput
        for p in (4, 16, 36, 64)
    ]
    assert ratios == sorted(ratios)


def test_speedup_at_64_matches_paper_band(rows):
    """Paper: 1.48× training, 1.79× inference.  The simulator is an α–β
    model, so we accept the right direction and a generous band."""
    tr, inf = table2.speedup_at(rows, 64)
    assert 1.15 <= tr <= 1.9
    assert 1.2 <= inf <= 2.2


def test_per_sequence_times_within_2x_of_paper(rows):
    for r in rows:
        assert r.result.forward_per_seq == pytest.approx(r.paper[0], rel=1.0)
        assert r.result.backward_per_seq == pytest.approx(r.paper[1], rel=1.0)


def test_memory_feasible_at_paper_batches(rows):
    """Every paper configuration must fit the 16 GB devices."""
    for r in rows:
        assert r.result.peak_memory_bytes <= 16 * 1024**3, r.result
